"""Tests for the sequential baselines: block Thomas and cyclic reduction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cyclic_reduction import (
    CyclicReductionFactorization,
    cyclic_reduction_solve,
)
from repro.core.thomas import ThomasFactorization, thomas_solve
from repro.exceptions import ShapeError
from repro.linalg.reference import dense_solve
from repro.workloads import (
    helmholtz_block_system,
    multigroup_diffusion_system,
    poisson_block_system,
    random_block_dd_system,
    random_rhs,
)

FACTORIES = [ThomasFactorization, CyclicReductionFactorization]
ONESHOTS = [thomas_solve, cyclic_reduction_solve]


@pytest.mark.parametrize("factory", FACTORIES)
class TestAgainstReference:
    @pytest.mark.parametrize("n,m", [(1, 3), (2, 2), (3, 1), (7, 4), (16, 3), (33, 2)])
    def test_matches_dense(self, factory, n, m):
        mat, _ = random_block_dd_system(n, m, seed=n * 100 + m)
        b = random_rhs(n, m, nrhs=3, seed=1)
        x = factory(mat).solve(b)
        np.testing.assert_allclose(x, dense_solve(mat, b), rtol=1e-8, atol=1e-10)

    def test_poisson(self, factory):
        mat, _ = poisson_block_system(20, 5)
        b = random_rhs(20, 5, nrhs=2, seed=2)
        x = factory(mat).solve(b)
        assert mat.residual(x, b) < 1e-11

    def test_multigroup(self, factory):
        mat, _ = multigroup_diffusion_system(12, 4, seed=0)
        b = random_rhs(12, 4, nrhs=2, seed=3)
        assert mat.residual(factory(mat).solve(b), b) < 1e-11

    def test_factor_reuse_many_solves(self, factory):
        mat, _ = random_block_dd_system(8, 3, seed=4)
        fact = factory(mat)
        for seed in range(3):
            b = random_rhs(8, 3, nrhs=2, seed=seed)
            assert mat.residual(fact.solve(b), b) < 1e-10

    def test_rhs_layouts(self, factory):
        mat, _ = random_block_dd_system(6, 2, seed=5)
        fact = factory(mat)
        flat = random_rhs(6, 2, nrhs=1, seed=6).reshape(12)
        x = fact.solve(flat)
        assert x.shape == (12,)
        multi = random_rhs(6, 2, nrhs=4, seed=7).reshape(12, 4)
        assert fact.solve(multi).shape == (12, 4)

    def test_rejects_non_matrix(self, factory):
        with pytest.raises(ShapeError):
            factory(np.eye(4))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 12), st.integers(1, 4), st.integers(0, 500))
    def test_property_residual_small(self, factory, n, m, seed):
        mat, _ = random_block_dd_system(n, m, seed=seed)
        b = random_rhs(n, m, nrhs=2, seed=seed + 1)
        assert mat.residual(factory(mat).solve(b), b) < 1e-9


@pytest.mark.parametrize("oneshot", ONESHOTS)
def test_oneshot_helpers(oneshot):
    mat, _ = helmholtz_block_system(9, 3)
    b = random_rhs(9, 3, nrhs=2, seed=8)
    assert mat.residual(oneshot(mat, b), b) < 1e-11


class TestCyclicInternals:
    def test_level_count(self):
        mat, _ = random_block_dd_system(16, 2, seed=9)
        fact = CyclicReductionFactorization(mat)
        # 16 -> 8 -> 4 -> 2 -> 1: four reduction levels.
        assert len(fact.levels) == 4

    def test_odd_sizes(self):
        for n in (3, 5, 9, 13, 21):
            mat, _ = random_block_dd_system(n, 2, seed=n)
            b = random_rhs(n, 2, nrhs=1, seed=n)
            assert mat.residual(CyclicReductionFactorization(mat).solve(b), b) < 1e-9

    def test_single_row(self):
        mat, _ = random_block_dd_system(1, 4, seed=10)
        fact = CyclicReductionFactorization(mat)
        assert fact.levels == []
        b = random_rhs(1, 4, nrhs=2, seed=11)
        assert mat.residual(fact.solve(b), b) < 1e-12


class TestThomasInternals:
    def test_stores_premultiplied_v(self):
        mat, _ = random_block_dd_system(5, 3, seed=12)
        fact = ThomasFactorization(mat)
        assert fact._v.shape == (4, 3, 3)

    def test_single_row(self):
        mat, _ = random_block_dd_system(1, 3, seed=13)
        b = random_rhs(1, 3, nrhs=1, seed=14)
        assert mat.residual(ThomasFactorization(mat).solve(b), b) < 1e-12
