"""Tests for transfer operators and local kernels (repro.core.recurrence).

These validate the algebra the solvers build on: the transfer maps
reproduce the block-row equations, the structured aggregate equals the
explicit product of ``2M x 2M`` companion matrices, and the vector
aggregate/back-substitution match direct evaluation of the affine maps.
"""

import numpy as np
import pytest

from repro.config import config_context
from repro.core.distribute import distribute_matrix
from repro.core.recurrence import (
    LEVELWISE_MIN_ROWS,
    TransferOperators,
    forward_solution,
    local_matrix_aggregate,
    local_vector_aggregate,
)
from repro.exceptions import ShapeError, SingularBlockError
from repro.linalg.blocktridiag import BlockTridiagonalMatrix
from repro.linalg.reference import dense_solve
from repro.workloads import helmholtz_block_system, random_rhs


def companion(t1, t2):
    """Explicit 2M x 2M transfer matrix [[T1, T2], [I, 0]]."""
    m = t1.shape[0]
    out = np.zeros((2 * m, 2 * m))
    out[:m, :m] = t1
    out[:m, m:] = t2
    out[m:, :m] = np.eye(m)
    return out


@pytest.fixture
def chunk_and_matrix():
    mat, _ = helmholtz_block_system(8, 3)
    chunks = distribute_matrix(mat, 2)
    return chunks[0], mat


class TestTransferOperators:
    def test_satisfies_row_equation(self, chunk_and_matrix):
        """L x_{i-1} + D x_i + U x_{i+1} = d  <=>  the transfer map."""
        chunk, mat = chunk_and_matrix
        ops = TransferOperators(chunk)
        rng = np.random.default_rng(0)
        d = rng.standard_normal((chunk.nrows, 3, 1))
        g = ops.g(d)
        for j in range(ops.ntransfer):
            i = chunk.lo + j
            x_prev = rng.standard_normal((3, 1))
            x_cur = rng.standard_normal((3, 1))
            x_next = ops.t1[j] @ x_cur + ops.t2[j] @ x_prev + g[j]
            lhs = mat.diag[i] @ x_cur + mat.upper[i] @ x_next
            if i > 0:
                lhs += mat.lower[i - 1] @ x_prev
            np.testing.assert_allclose(lhs, d[j], atol=1e-10)

    def test_first_row_has_zero_t2(self):
        mat, _ = helmholtz_block_system(4, 2)
        chunk = distribute_matrix(mat, 1)[0]
        ops = TransferOperators(chunk)
        np.testing.assert_array_equal(ops.t2[0], 0.0)

    def test_empty_chunk(self):
        mat, _ = helmholtz_block_system(2, 2)
        chunk = distribute_matrix(mat, 4)[3]  # owns nothing
        ops = TransferOperators(chunk)
        assert ops.ntransfer == 0
        assert ops.t1.shape == (0, 2, 2)
        g = ops.g(np.zeros((0, 2, 3)))
        assert g.shape == (0, 2, 3)

    def test_singular_superdiagonal_detected(self):
        diag = np.stack([np.eye(2)] * 3)
        lower = np.stack([np.eye(2)] * 2)
        upper = np.stack([np.eye(2), np.zeros((2, 2))])  # U_1 singular
        mat = BlockTridiagonalMatrix(lower, diag, upper)
        chunk = distribute_matrix(mat, 1)[0]
        with pytest.raises(SingularBlockError) as exc:
            TransferOperators(chunk)
        assert exc.value.block_index == 1

    def test_g_validation(self, chunk_and_matrix):
        chunk, _ = chunk_and_matrix
        ops = TransferOperators(chunk)
        with pytest.raises(ShapeError):
            ops.g(np.zeros((1, 3, 1)))  # too few rows
        with pytest.raises(ShapeError):
            ops.g(np.zeros((chunk.nrows, 5, 1)))  # wrong block size

    def test_nbytes(self, chunk_and_matrix):
        chunk, _ = chunk_and_matrix
        assert TransferOperators(chunk).nbytes > 0


class TestLocalMatrixAggregate:
    def test_matches_explicit_product(self, chunk_and_matrix):
        chunk, _ = chunk_and_matrix
        ops = TransferOperators(chunk)
        agg = local_matrix_aggregate(ops)
        explicit = np.eye(6)
        for j in range(ops.ntransfer):
            explicit = companion(ops.t1[j], ops.t2[j]) @ explicit
        np.testing.assert_allclose(agg, explicit, atol=1e-10)

    def test_empty_chunk_gives_identity(self):
        mat, _ = helmholtz_block_system(2, 3)
        chunk = distribute_matrix(mat, 3)[2]
        ops = TransferOperators(chunk)
        np.testing.assert_array_equal(local_matrix_aggregate(ops), np.eye(6))


class TestLocalVectorAggregate:
    def test_matches_affine_application(self, chunk_and_matrix):
        chunk, _ = chunk_and_matrix
        ops = TransferOperators(chunk)
        rng = np.random.default_rng(1)
        d = rng.standard_normal((chunk.nrows, 3, 2))
        g = ops.g(d)
        agg = local_vector_aggregate(ops, g)
        # Run the affine recurrence from zero state explicitly.
        state = np.zeros((6, 2))
        for j in range(ops.ntransfer):
            gfull = np.vstack([g[j], np.zeros((3, 2))])
            state = companion(ops.t1[j], ops.t2[j]) @ state + gfull
        np.testing.assert_allclose(agg, state, atol=1e-10)

    def test_row_count_validation(self, chunk_and_matrix):
        chunk, _ = chunk_and_matrix
        ops = TransferOperators(chunk)
        with pytest.raises(ShapeError):
            local_vector_aggregate(ops, np.zeros((ops.ntransfer + 1, 3, 1)))


class TestForwardSolution:
    def test_reproduces_reference_solution(self):
        mat, _ = helmholtz_block_system(6, 2)
        b = random_rhs(6, 2, nrhs=2, seed=3)
        x_ref = dense_solve(mat, b)
        chunk = distribute_matrix(mat, 1)[0]
        ops = TransferOperators(chunk)
        g = ops.g(b)
        entry = np.vstack([x_ref[0], np.zeros((2, 2))])  # s_0 = [x_0; 0]
        x = forward_solution(ops, g, entry, 6)
        np.testing.assert_allclose(x, x_ref, atol=1e-9)

    def test_zero_rows(self):
        mat, _ = helmholtz_block_system(2, 2)
        chunk = distribute_matrix(mat, 3)[2]
        ops = TransferOperators(chunk)
        out = forward_solution(ops, np.zeros((0, 2, 1)), np.zeros((4, 1)), 0)
        assert out.shape == (0, 2, 1)

    def test_first_row_is_entry_state_top(self, chunk_and_matrix):
        chunk, _ = chunk_and_matrix
        ops = TransferOperators(chunk)
        rng = np.random.default_rng(2)
        g = ops.g(rng.standard_normal((chunk.nrows, 3, 1)))
        entry = rng.standard_normal((6, 1))
        out = forward_solution(ops, g, entry, chunk.nrows)
        np.testing.assert_array_equal(out[0], entry[:3])


class TestLevelwiseMode:
    """The level-wise (batched Blelloch) evaluation must agree with the
    sequential recurrence on every kernel, at every chunk height."""

    @pytest.mark.parametrize("n", [2, 3, 7, 8, 16, 19])
    def test_all_kernels_match_sequential(self, n):
        mat, _ = helmholtz_block_system(n, 3)
        chunk = distribute_matrix(mat, 1)[0]
        ops = TransferOperators(chunk)
        rng = np.random.default_rng(4)
        g = ops.g(rng.standard_normal((chunk.nrows, 3, 2)))
        entry = rng.standard_normal((6, 2))
        results = {}
        for mode in ("sequential", "levelwise"):
            with config_context(recurrence_mode=mode):
                results[mode] = (
                    local_matrix_aggregate(ops),
                    local_vector_aggregate(ops, g[: ops.ntransfer]),
                    forward_solution(ops, g, entry, chunk.nrows),
                )
        for seq, lvl in zip(results["sequential"], results["levelwise"]):
            np.testing.assert_allclose(lvl, seq, rtol=1e-9, atol=1e-11)

    def test_levels_cached_on_operators(self):
        mat, _ = helmholtz_block_system(8, 2)
        ops = TransferOperators(distribute_matrix(mat, 1)[0])
        assert ops._levels is None
        with config_context(recurrence_mode="levelwise"):
            local_matrix_aggregate(ops)
            levels = ops._levels
            assert levels is not None
            local_matrix_aggregate(ops)  # reuse, no rebuild
            assert ops._levels is levels
        assert ops.nbytes > levels.nbytes  # tree counted in footprint

    def test_auto_threshold(self):
        """``auto`` only engages level-wise evaluation at large chunk
        heights, small blocks, and thin RHS panels — small (test-sized)
        problems keep the sequential flop profile the virtual-time
        model is calibrated on, and wide compute-bound panels never pay
        the 4x level-wise vector flops."""
        from repro.core.recurrence import LEVELWISE_MAX_RHS, _use_levelwise

        with config_context(recurrence_mode="auto"):
            assert not _use_levelwise(8, 4, "t")
            assert _use_levelwise(LEVELWISE_MIN_ROWS, 4, "t")
            assert not _use_levelwise(LEVELWISE_MIN_ROWS, 32, "t")
            assert _use_levelwise(LEVELWISE_MIN_ROWS, 4, "t",
                                  panel=LEVELWISE_MAX_RHS)
            assert not _use_levelwise(LEVELWISE_MIN_ROWS, 4, "t",
                                      panel=LEVELWISE_MAX_RHS + 1)
        with config_context(recurrence_mode="sequential"):
            assert not _use_levelwise(10_000, 2, "t")
        with config_context(recurrence_mode="levelwise"):
            assert _use_levelwise(2, 2, "t", panel=1000)

    def test_mode_decision_traced(self):
        from repro.obs import tracing

        mat, _ = helmholtz_block_system(6, 2)
        ops = TransferOperators(distribute_matrix(mat, 1)[0])
        with tracing() as tr, config_context(recurrence_mode="levelwise"):
            local_matrix_aggregate(ops)
        events = [e for e in tr.events if e.name == "recurrence.mode"]
        assert events and events[0].attrs["levelwise"] is True
        assert events[0].attrs["kernel"] == "matrix_aggregate"

    def test_forward_solution_matches_reference(self):
        mat, _ = helmholtz_block_system(12, 2)
        b = random_rhs(12, 2, nrhs=3, seed=5)
        x_ref = dense_solve(mat, b)
        chunk = distribute_matrix(mat, 1)[0]
        ops = TransferOperators(chunk)
        g = ops.g(b)
        entry = np.vstack([x_ref[0], np.zeros((2, 3))])
        with config_context(recurrence_mode="levelwise"):
            x = forward_solution(ops, g, entry, 12)
        np.testing.assert_allclose(x, x_ref, atol=1e-9)
