"""Tests for the solver service layer (repro.service).

Covers the three subsystems separately — fingerprint keys, the
single-flight LRU cache, the batcher bookkeeping — and the assembled
:class:`SolverService`: correctness against direct solves, batching
semantics, backpressure, deadlines, eviction/refactor, drain, and the
metrics snapshot.  Concurrency tests use barriers and explicit flushes
rather than sleeps wherever determinism allows.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.core.api import factor
from repro.exceptions import (
    ConfigError,
    DeadlineExceededError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadError,
    ShapeError,
)
from repro.service import (
    FactorHandle,
    FactorizationCache,
    RequestBatcher,
    SolveRequest,
    SolverService,
    factor_key,
)
from repro.workloads import helmholtz_block_system, random_rhs

N, M = 12, 3


@pytest.fixture
def system():
    matrix, _ = helmholtz_block_system(N, M)
    b = random_rhs(N, M, nrhs=2, seed=0)
    return matrix, b


def _other_matrix():
    matrix, _ = helmholtz_block_system(N, M, theta=0.9)
    return matrix


# ---------------------------------------------------------------------------
# fingerprint / cache keys


class TestFingerprint:
    def test_content_addressed(self, system):
        matrix, _ = system
        assert matrix.fingerprint() == matrix.copy().fingerprint()
        assert factor_key(matrix, "ard", 4) == factor_key(matrix.copy(), "ard", 4)

    def test_distinguishes_content(self, system):
        matrix, _ = system
        other = matrix.copy()
        other.diag[0, 0, 0] += 1.0
        other._fingerprint = None  # mutated outside the immutability contract
        assert matrix.fingerprint() != other.fingerprint()

    def test_distinguishes_method_and_ranks(self, system):
        matrix, _ = system
        keys = {
            factor_key(matrix, "ard", 1),
            factor_key(matrix, "ard", 4),
            factor_key(matrix, "spike", 4),
            factor_key(matrix, "thomas", 1),
        }
        assert len(keys) == 4

    def test_sequential_methods_ignore_nranks(self, system):
        matrix, _ = system
        assert factor_key(matrix, "thomas", 4) == factor_key(matrix, "thomas", 1)
        assert factor_key(matrix, "cyclic", 8) == factor_key(matrix, "cyclic", 1)

    def test_rejects_bad_inputs(self, system):
        matrix, _ = system
        with pytest.raises(ConfigError):
            factor_key(matrix, "gaussian", 1)
        with pytest.raises(ShapeError):
            factor_key(np.eye(4), "ard", 1)
        with pytest.raises(ShapeError):
            factor_key(matrix, "ard", 0)

    def test_api_fingerprint_function(self, system):
        from repro.core.api import fingerprint

        matrix, _ = system
        assert fingerprint(matrix) == matrix.fingerprint()
        assert fingerprint(matrix, method="ard", nranks=4) == factor_key(
            matrix, "ard", 4)
        with pytest.raises(ShapeError):
            fingerprint(np.eye(4))


# ---------------------------------------------------------------------------
# cache


class _FakeFact:
    """Stand-in factorization with a controllable byte size."""

    def __init__(self, nbytes=100):
        self.nbytes = nbytes


class TestFactorizationCache:
    def test_hit_miss_counters(self):
        cache = FactorizationCache()
        fact, hit = cache.get_or_create("k1", _FakeFact)
        assert not hit
        same, hit = cache.get_or_create("k1", _FakeFact)
        assert hit and same is fact
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = FactorizationCache(max_bytes=None, max_entries=2)
        cache.put("a", _FakeFact())
        cache.put("b", _FakeFact())
        assert cache.get("a") is not None  # refresh a → b is now LRU
        cache.put("c", _FakeFact())
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.stats().evictions == 1

    def test_byte_budget_accounting(self):
        cache = FactorizationCache(max_bytes=250)
        cache.put("a", _FakeFact(100))
        cache.put("b", _FakeFact(100))
        assert cache.nbytes == 200
        cache.put("c", _FakeFact(100))   # 300 > 250: evict LRU ("a")
        assert cache.nbytes == 200 and "a" not in cache
        assert cache.evict("b")
        assert cache.nbytes == 100
        assert not cache.evict("b")      # already gone
        assert cache.clear() == 1
        assert cache.nbytes == 0 and len(cache) == 0

    def test_oversized_entry_still_admitted(self):
        cache = FactorizationCache(max_bytes=50)
        cache.put("small", _FakeFact(10))
        cache.put("huge", _FakeFact(500))
        assert "huge" in cache and "small" not in cache
        assert len(cache) == 1

    def test_replace_updates_bytes(self):
        cache = FactorizationCache(max_bytes=None)
        cache.put("a", _FakeFact(100))
        cache.put("a", _FakeFact(30))
        assert cache.nbytes == 30 and len(cache) == 1

    def test_single_flight_exactly_one_build(self, system):
        matrix, _ = system
        cache = FactorizationCache()
        key = factor_key(matrix, "thomas", 1)
        builds = []
        build_lock = threading.Lock()  # repro: noqa[RC103]
        nthreads = 8
        barrier = threading.Barrier(nthreads)  # repro: noqa[RC103]
        results = [None] * nthreads

        def build():
            with build_lock:
                builds.append(threading.get_ident())
            time.sleep(0.05)  # widen the race window
            return factor(matrix, method="thomas")

        def worker(i):
            barrier.wait()
            results[i] = cache.get_or_create(key, build)

        threads = [threading.Thread(target=worker, args=(i,))  # repro: noqa[RC103]
                   for i in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1, "single-flight violated: multiple factorizations"
        facts = {id(fact) for fact, _ in results}
        assert len(facts) == 1, "threads received different factorizations"
        hits = [hit for _, hit in results]
        assert hits.count(False) == 1 and hits.count(True) == nthreads - 1
        stats = cache.stats()
        assert stats.misses == 1 and stats.hits == nthreads - 1

    def test_single_flight_leader_failure_propagates(self):
        cache = FactorizationCache()
        release = threading.Event()  # repro: noqa[RC103]
        entered = threading.Event()  # repro: noqa[RC103]

        def failing_build():
            entered.set()
            release.wait(timeout=5)
            raise RuntimeError("factor exploded")

        errors = []

        def leader():
            try:
                cache.get_or_create("k", failing_build)
            except RuntimeError as exc:
                errors.append(exc)

        def waiter():
            entered.wait(timeout=5)
            try:
                cache.get_or_create("k", failing_build)
            except RuntimeError as exc:
                errors.append(exc)
            release.set()  # only reached if it became a second leader

        t1 = threading.Thread(target=leader)  # repro: noqa[RC103]
        t1.start()
        entered.wait(timeout=5)
        t2 = threading.Thread(target=waiter)  # repro: noqa[RC103]
        t2.start()
        time.sleep(0.05)  # let the waiter reach the event wait
        release.set()
        t1.join(5)
        t2.join(5)
        assert len(errors) == 2
        assert errors[0] is errors[1], "waiter did not share the leader's error"
        assert "k" not in cache


# ---------------------------------------------------------------------------
# batcher


def _req(key, nrhs=1, enqueued=0.0, deadline=None):
    return SolveRequest(
        key=key, handle=None, bb=np.zeros((N, M, nrhs)),
        original=(N, M, nrhs), future=Future(), enqueued=enqueued,
        deadline=deadline,
    )


class TestRequestBatcher:
    def test_window_trigger(self):
        b = RequestBatcher(window=1.0, max_batch_rhs=64)
        b.put(_req("k", enqueued=0.0))
        assert b.take(now=0.5) is None          # window still open
        assert b.next_ready_in(0.5) == pytest.approx(0.5)
        batch = b.take(now=1.0)                 # window expired
        assert batch is not None and len(batch) == 1
        assert b.pending_requests == 0

    def test_size_trigger_and_cap(self):
        b = RequestBatcher(window=100.0, max_batch_rhs=4)
        for _ in range(6):
            b.put(_req("k"))
        batch = b.take(now=0.0)                 # size-ready despite window
        assert len(batch) == 4
        b.release("k")
        assert b.take(now=0.0) is None          # leftovers: window restarts
        assert len(b.take(now=0.0, flush_all=True)) == 2

    def test_busy_key_serializes(self):
        b = RequestBatcher(window=0.0, max_batch_rhs=64)
        b.put(_req("k"))
        first = b.take(now=0.0)
        assert first is not None
        b.put(_req("k"))                        # arrives while k is busy
        assert b.take(now=1.0) is None          # no second concurrent batch
        assert b.next_ready_in(1.0) is None     # only busy keys pending
        b.release("k")
        assert len(b.take(now=1.0)) == 1

    def test_multi_key_fifo(self):
        b = RequestBatcher(window=0.0, max_batch_rhs=64)
        b.put(_req("k1", enqueued=0.0))
        b.put(_req("k2", enqueued=1.0))
        assert b.take(now=2.0)[0].key == "k1"   # oldest key first
        assert b.take(now=2.0)[0].key == "k2"

    def test_oversized_request_forms_own_batch(self):
        b = RequestBatcher(window=0.0, max_batch_rhs=4)
        b.put(_req("k", nrhs=10))
        b.put(_req("k", nrhs=1))
        assert [r.nrhs for r in b.take(now=1.0)] == [10]

    def test_drain_pending(self):
        b = RequestBatcher(window=10.0)
        b.put(_req("k1"))
        b.put(_req("k2"))
        assert len(b.drain_pending()) == 2
        assert b.idle and b.pending_rhs == 0

    def test_expedite(self):
        b = RequestBatcher(window=1000.0)
        b.put(_req("k", enqueued=5.0))
        assert b.take(now=6.0) is None
        b.expedite()
        assert b.take(now=6.0) is not None


# ---------------------------------------------------------------------------
# service end-to-end


class TestSolverService:
    @pytest.mark.parametrize("method,nranks",
                             [("ard", 3), ("spike", 3), ("thomas", 1),
                              ("cyclic", 1)])
    def test_matches_direct_solve(self, system, method, nranks):
        matrix, b = system
        direct = factor(matrix, method=method, nranks=nranks).solve(b)
        with SolverService(method=method, nranks=nranks, workers=2) as svc:
            x = svc.solve(matrix, b, timeout=30.0)
        np.testing.assert_array_equal(x, direct)

    def test_rhs_layouts_round_trip(self, system):
        matrix, _ = system
        layouts = [
            random_rhs(N, M, 1, seed=1).reshape(N * M),        # flat 1-D
            random_rhs(N, M, 1, seed=2).reshape(N, M),         # (N, M)
            random_rhs(N, M, 2, seed=3).reshape(N * M, 2),     # flat 2-D
            random_rhs(N, M, 2, seed=4),                       # (N, M, R)
        ]
        with SolverService(method="thomas", workers=1) as svc:
            h = svc.register(matrix, eager=True)
            tickets = [svc.submit(h, b) for b in layouts]
            for b, t in zip(layouts, tickets):
                x = t.result(timeout=30.0)
                assert x.shape == b.shape
                assert matrix.residual(
                    x.reshape(N, M, -1), b.reshape(N, M, -1)) < 1e-10

    def test_batches_coalesce_while_worker_busy(self, system):
        matrix, _ = system
        nreq = 16
        with SolverService(method="thomas", workers=1, batch_window=30.0,
                           max_batch_rhs=64, max_pending=64) as svc:
            h = svc.register(matrix, eager=True)
            tickets = [svc.submit(h, random_rhs(N, M, 1, seed=i))
                       for i in range(nreq)]
            svc.flush()
            for t in tickets:
                t.result(timeout=30.0)
            snap = svc.metrics_snapshot()
        assert snap["counters"]["requests.completed"] == nreq
        # Everything queued behind the huge window flushed as one batch.
        assert snap["summaries"]["batch.size"]["max"] == nreq
        assert snap["counters"]["batches"] == 1
        assert snap["counters"]["requests.served_from_cache"] == nreq

    def test_cache_reuse_across_requests(self, system):
        matrix, b = system
        with SolverService(method="ard", nranks=3, workers=1) as svc:
            h = svc.register(matrix)
            for _ in range(5):
                svc.solve(h, b, timeout=30.0)
            snap = svc.metrics_snapshot()
        assert snap["cache"]["misses"] == 1, "factored more than once"
        assert snap["cache"]["hits"] >= 4

    def test_evict_forces_refactor(self, system):
        matrix, b = system
        with SolverService(method="thomas", workers=1) as svc:
            h = svc.register(matrix, eager=True)
            svc.solve(h, b, timeout=30.0)
            assert svc.evict(h)
            assert not svc.evict(h)
            svc.solve(h, b, timeout=30.0)
            snap = svc.metrics_snapshot()
        assert snap["cache"]["misses"] == 2
        assert snap["cache"]["evictions"] == 1

    def test_distinct_matrices_distinct_entries(self, system):
        matrix, b = system
        other = _other_matrix()
        with SolverService(method="thomas", workers=2) as svc:
            x1 = svc.solve(matrix, b, timeout=30.0)
            x2 = svc.solve(other, b, timeout=30.0)
            snap = svc.metrics_snapshot()
        assert snap["cache"]["entries"] == 2
        assert not np.allclose(x1, x2)

    def test_overload_reject(self, system):
        matrix, b = system
        with SolverService(method="thomas", workers=1, max_pending=2,
                           batch_window=60.0) as svc:
            h = svc.register(matrix, eager=True)
            t1 = svc.submit(h, b)
            t2 = svc.submit(h, b)
            with pytest.raises(ServiceOverloadError):
                svc.submit(h, b)
            svc.flush()
            t1.result(timeout=30.0)
            t2.result(timeout=30.0)
            snap = svc.metrics_snapshot()
        assert snap["counters"]["requests.rejected"] == 1

    def test_overload_block_unblocks_on_space(self, system):
        matrix, b = system
        svc = SolverService(method="thomas", workers=1, max_pending=1,
                            batch_window=60.0, overload="block")
        try:
            h = svc.register(matrix, eager=True)
            t1 = svc.submit(h, b)
            unblocked = []

            def blocked_submit():
                unblocked.append(svc.submit(h, b))

            thread = threading.Thread(target=blocked_submit)  # repro: noqa[RC103]
            thread.start()
            time.sleep(0.05)
            assert not unblocked, "submit should have blocked on a full queue"
            svc.flush()                     # worker takes t1 → space frees
            thread.join(timeout=30.0)
            assert not thread.is_alive() and len(unblocked) == 1
            t1.result(timeout=30.0)
            svc.flush()
            unblocked[0].result(timeout=30.0)
        finally:
            svc.close()

    def test_deadline_expires_in_queue(self, system):
        matrix, b = system
        with SolverService(method="thomas", workers=1,
                           batch_window=60.0) as svc:
            h = svc.register(matrix, eager=True)
            ticket = svc.submit(h, b, deadline=0.01)
            time.sleep(0.05)
            svc.flush()
            with pytest.raises(DeadlineExceededError):
                ticket.result(timeout=30.0)
            snap = svc.metrics_snapshot()
        assert snap["counters"]["requests.expired"] == 1
        with pytest.raises(ConfigError):
            SolverService(method="thomas").submit(matrix, b, deadline=0.0)

    def test_close_drains_pending(self, system):
        matrix, b = system
        svc = SolverService(method="thomas", workers=1, batch_window=60.0,
                            max_pending=16)
        h = svc.register(matrix, eager=True)
        tickets = [svc.submit(h, random_rhs(N, M, 1, seed=i))
                   for i in range(8)]
        svc.close(drain=True)
        for t in tickets:
            assert t.result(timeout=30.0) is not None
        with pytest.raises(ServiceClosedError):
            svc.submit(h, b)

    def test_close_abandon_fails_pending(self, system):
        matrix, b = system
        svc = SolverService(method="thomas", workers=1, batch_window=60.0,
                            max_pending=16)
        h = svc.register(matrix, eager=True)
        tickets = [svc.submit(h, b) for _ in range(4)]
        svc.close(drain=False)
        for t in tickets:
            with pytest.raises(ServiceClosedError):
                t.result(timeout=30.0)

    def test_concurrent_submitters_one_factorization(self, system):
        """N threads hammering one fingerprint: single-flight end to end."""
        matrix, _ = system
        nthreads = 8
        barrier = threading.Barrier(nthreads)  # repro: noqa[RC103]
        with SolverService(method="ard", nranks=3, workers=4,
                           batch_window=0.0, max_pending=64) as svc:
            h = svc.register(matrix)  # lazy: workers race to factor

            def hammer(i):
                barrier.wait()
                return svc.solve(h, random_rhs(N, M, 1, seed=i), timeout=30.0)

            results = [None] * nthreads
            threads = [
                threading.Thread(target=lambda i=i: results.__setitem__(  # repro: noqa[RC103]
                    i, hammer(i)))
                for i in range(nthreads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30.0)
            snap = svc.metrics_snapshot()
        assert all(r is not None for r in results)
        assert snap["cache"]["misses"] == 1, (
            "concurrent requests triggered more than one factorization")
        assert snap["counters"]["requests.completed"] == nthreads

    def test_service_errors_are_repro_errors(self):
        assert issubclass(ServiceOverloadError, ReproError)
        assert issubclass(ServiceClosedError, ReproError)
        assert issubclass(DeadlineExceededError, ReproError)

    def test_solve_failure_propagates(self, system):
        matrix, _ = system
        with SolverService(method="thomas", workers=1) as svc:
            h = svc.register(matrix, eager=True)
            bad = np.zeros((N + 1, M, 1))
            with pytest.raises(ShapeError):
                svc.submit(h, bad)
            snap = svc.metrics_snapshot()
        assert snap["counters"].get("requests.failed", 0) == 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SolverService(method="gaussian")
        with pytest.raises(ConfigError):
            SolverService(workers=0)
        with pytest.raises(ConfigError):
            SolverService(max_pending=0)
        with pytest.raises(ConfigError):
            SolverService(overload="drop")

    def test_submit_rejects_non_matrix_target(self, system):
        _, b = system
        with SolverService(method="thomas") as svc:
            with pytest.raises(ShapeError):
                svc.submit(np.eye(N * M), b)

    def test_trace_records_request_spans(self, system):
        matrix, b = system
        with SolverService(method="thomas", workers=1, trace=True) as svc:
            h = svc.register(matrix, eager=True)
            svc.solve(h, b, timeout=30.0)
            svc.solve(h, b, timeout=30.0)
        spans = [s for t in svc.traces() for s in t.spans]
        names = [s.name for s in spans]
        assert names.count("queued") == 2
        assert names.count("solved") == 2
        assert all(s.cat == "request" for s in spans)
        solved = [s for s in spans if s.name == "solved"]
        assert all(s.attrs["cache_hit"] for s in solved)

    def test_handle_metadata(self, system):
        matrix, _ = system
        with SolverService(method="ard", nranks=3) as svc:
            h = svc.register(matrix)
        assert isinstance(h, FactorHandle)
        assert h.key == factor_key(matrix, "ard", 3)
        assert h.fingerprint == matrix.fingerprint()

    def test_metrics_snapshot_shape(self, system):
        matrix, b = system
        with SolverService(method="thomas") as svc:
            svc.solve(matrix, b, timeout=30.0)
            snap = svc.metrics_snapshot()
        assert set(snap) == {"counters", "gauges", "summaries", "cache"}
        assert snap["cache"]["hit_rate"] is not None
        import json

        json.dumps(snap)  # must be JSON-serializable
