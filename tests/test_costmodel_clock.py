"""Tests for repro.comm.costmodel and repro.comm.clock."""

import numpy as np
import pytest

from repro.comm.clock import VirtualClock
from repro.comm.costmodel import CostModel, DEFAULT_COST_MODEL, payload_nbytes
from repro.exceptions import ConfigError
from repro.prefix import AffinePair
from repro.util.flops import FlopCounter


class TestCostModel:
    def test_message_time(self):
        cm = CostModel(latency=1e-6, inv_bandwidth=1e-9, overhead=0.0)
        assert cm.message_time(1000) == pytest.approx(1e-6 + 1e-6)

    def test_compute_time(self):
        cm = CostModel(flop_rate=1e9)
        assert cm.compute_time(2e9) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            CostModel(latency=-1.0)
        with pytest.raises(ConfigError):
            CostModel(flop_rate=0.0)

    def test_scaled(self):
        cm = DEFAULT_COST_MODEL.scaled(flop_rate=1.0)
        assert cm.flop_rate == 1.0
        assert cm.latency == DEFAULT_COST_MODEL.latency


class TestPayloadNbytes:
    def test_ndarray(self):
        assert payload_nbytes(np.zeros(10)) == 80

    def test_bytes(self):
        assert payload_nbytes(b"abc") == 3

    def test_scalar(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(3.5) == 8
        assert payload_nbytes(True) == 8

    def test_none(self):
        assert payload_nbytes(None) == 1

    def test_str(self):
        assert payload_nbytes("hello") == 5

    def test_tuple_sums(self):
        t = (np.zeros(4), np.zeros(2))
        assert payload_nbytes(t) == 8 + 32 + 16

    def test_dict(self):
        assert payload_nbytes({"k": np.zeros(1)}) == 8 + 1 + 8

    def test_object_with_nbytes(self):
        pair = AffinePair(np.eye(3), np.zeros((3, 2)))
        assert payload_nbytes(pair) == pair.nbytes

    def test_fallback_pickles(self):
        class Thing:
            pass

        assert payload_nbytes(Thing()) > 0


class TestVirtualClock:
    def test_starts_at_zero(self):
        clock = VirtualClock(DEFAULT_COST_MODEL)
        assert clock.now == 0.0

    def test_advance(self):
        clock = VirtualClock(DEFAULT_COST_MODEL)
        clock.advance(1.5)
        assert clock.now == 1.5

    def test_advance_negative_rejected(self):
        clock = VirtualClock(DEFAULT_COST_MODEL)
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_advance_to_only_forward(self):
        clock = VirtualClock(DEFAULT_COST_MODEL)
        clock.advance_to(2.0)
        clock.advance_to(1.0)
        assert clock.now == 2.0

    def test_sync_compute(self):
        fc = FlopCounter()
        cm = CostModel(flop_rate=1e6)
        clock = VirtualClock(cm, fc)
        fc.add("gemm", 1_000_000)
        assert clock.sync_compute() == pytest.approx(1.0)
        # Re-sync without new flops is a no-op.
        assert clock.sync_compute() == pytest.approx(1.0)
        fc.add("gemm", 500_000)
        assert clock.sync_compute() == pytest.approx(1.5)

    def test_sync_without_counter(self):
        clock = VirtualClock(DEFAULT_COST_MODEL, None)
        assert clock.sync_compute() == 0.0

    def test_charge_overhead(self):
        cm = CostModel(overhead=2e-6)
        clock = VirtualClock(cm)
        clock.charge_overhead()
        assert clock.now == pytest.approx(2e-6)
