"""Tests for the scalability-analysis layer (repro.perfmodel.scaling)."""

import pytest

from repro.exceptions import ConfigError
from repro.perfmodel import (
    PAPER_ERA_MODEL,
    efficiency,
    isoefficiency_n,
    sequential_time,
    speedup,
)


class TestSpeedupEfficiency:
    def test_sequential_time_positive_and_monotone(self):
        t1 = sequential_time(128, 8, 16)
        t2 = sequential_time(256, 8, 16)
        assert 0 < t1 < t2

    def test_speedup_grows_with_p_then_saturates(self):
        speeds = [
            speedup("ard", n=4096, m=8, p=p, r=256, cost_model=PAPER_ERA_MODEL)
            for p in (1, 4, 16, 64)
        ]
        assert speeds == sorted(speeds)
        # Diminishing returns: the last quadrupling of P gains < 4x.
        assert speeds[-1] / speeds[-2] < 4.0

    def test_efficiency_improves_with_n(self):
        es = [
            efficiency("ard", n=n, m=8, p=32, r=256, cost_model=PAPER_ERA_MODEL)
            for n in (256, 1024, 4096, 16384)
        ]
        assert es == sorted(es)

    def test_ard_more_efficient_than_rd_multi_rhs(self):
        kwargs = dict(n=2048, m=8, p=16, r=256, cost_model=PAPER_ERA_MODEL)
        assert efficiency("ard", **kwargs) > 3 * efficiency("rd", **kwargs)


class TestIsoefficiency:
    def test_threshold_is_tight(self):
        n_star = isoefficiency_n("ard", m=8, p=16, r=256, target=0.5)
        assert efficiency("ard", n=n_star, m=8, p=16, r=256) >= 0.5
        if n_star > 16:
            assert efficiency("ard", n=n_star - 1, m=8, p=16, r=256) < 0.5

    def test_grows_superlinearly_in_p(self):
        """RD-family isoefficiency is Theta(P log P): N(P)/P grows."""
        ns = {
            p: isoefficiency_n("ard", m=8, p=p, r=256, target=0.5)
            for p in (8, 32, 128)
        }
        assert ns[8] < ns[32] < ns[128]
        assert ns[128] / 128 > ns[8] / 8

    def test_unreachable_target_raises(self):
        # Naive RD's per-RHS M^3 overhead caps its efficiency well below 1.
        with pytest.raises(ConfigError, match="cannot reach"):
            isoefficiency_n("rd", m=8, p=16, r=64, target=0.9, n_max=1 << 22)

    def test_invalid_target(self):
        with pytest.raises(ConfigError):
            isoefficiency_n("ard", m=8, p=4, target=0.0)
