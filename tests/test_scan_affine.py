"""Tests for the traced affine scan and its replay — the mechanism that
realizes ARD's matrix-work reuse."""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.core.scan_affine import affine_scan, replay_scan
from repro.exceptions import ShapeError
from repro.prefix import AffinePair, affine_compose
from repro.prefix.scan import seq_exclusive_scan, seq_inclusive_scan


def _random_pairs(p, dim, width, seed=0):
    rng = np.random.default_rng(seed)
    return [
        AffinePair(rng.standard_normal((dim, dim)) / dim,
                   rng.standard_normal((dim, width)))
        for _ in range(p)
    ]


@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
class TestAffineScan:
    def test_inclusive_matches_sequential(self, p):
        pairs = _random_pairs(p, 4, 2)

        def program(comm):
            result, _ = affine_scan(comm, pairs[comm.rank])
            return result.inclusive

        values = run_spmd(program, p).values
        expected = seq_inclusive_scan(pairs, affine_compose)
        for got, want in zip(values, expected):
            assert got.allclose(want, rtol=1e-9, atol=1e-9)

    def test_exclusive_matches_sequential(self, p):
        pairs = _random_pairs(p, 4, 2, seed=1)

        def program(comm):
            result, _ = affine_scan(comm, pairs[comm.rank])
            return result.exclusive

        values = run_spmd(program, p).values
        ident = AffinePair.identity(4, 2)
        expected = seq_exclusive_scan(pairs, affine_compose, ident)
        for got, want in zip(values, expected):
            assert got.allclose(want, rtol=1e-9, atol=1e-9)

    def test_zero_width_matrix_only(self, p):
        pairs = _random_pairs(p, 4, 0, seed=2)

        def program(comm):
            result, _ = affine_scan(comm, pairs[comm.rank])
            return result.inclusive

        values = run_spmd(program, p).values
        expected = seq_inclusive_scan(pairs, affine_compose)
        for got, want in zip(values, expected):
            np.testing.assert_allclose(got.a, want.a, atol=1e-10)
            assert got.b.shape == (4, 0)


@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
class TestReplay:
    def test_replay_equals_fused_scan(self, p):
        """The ARD invariant: a matrix-only scan + vector replay must give
        exactly the vector parts a fused matrix+vector scan produces."""
        dim, width = 4, 3
        mats = _random_pairs(p, dim, 0, seed=3)
        rng = np.random.default_rng(4)
        panels = [rng.standard_normal((dim, width)) for _ in range(p)]

        def fused(comm):
            pair = AffinePair(mats[comm.rank].a, panels[comm.rank])
            result, _ = affine_scan(comm, pair)
            return result.inclusive.b, result.exclusive.b

        def factored(comm):
            result, trace = affine_scan(comm, mats[comm.rank], record=True)
            del result
            return replay_scan(comm, panels[comm.rank], trace)

        fused_vals = run_spmd(fused, p).values
        replay_vals = run_spmd(factored, p).values
        for (b_inc_f, b_exc_f), (b_inc_r, b_exc_r) in zip(fused_vals, replay_vals):
            np.testing.assert_allclose(b_inc_r, b_inc_f, atol=1e-9)
            np.testing.assert_allclose(b_exc_r, b_exc_f, atol=1e-9)

    def test_replay_reusable(self, p):
        """One trace must serve many replays (factor once, solve many)."""
        dim = 4
        mats = _random_pairs(p, dim, 0, seed=5)
        rng = np.random.default_rng(6)
        panel_sets = [
            [rng.standard_normal((dim, w)) for _ in range(p)] for w in (1, 2, 5)
        ]

        def program(comm):
            _, trace = affine_scan(comm, mats[comm.rank], record=True)
            return [
                replay_scan(comm, panels[comm.rank], trace)[0]
                for panels in panel_sets
            ]

        values = run_spmd(program, p).values
        for w_idx, panels in enumerate(panel_sets):
            pairs = [AffinePair(mats[r].a, panels[r]) for r in range(p)]
            expected = seq_inclusive_scan(pairs, affine_compose)
            for r in range(p):
                np.testing.assert_allclose(
                    values[r][w_idx], expected[r].b, atol=1e-9
                )


class TestReplayValidation:
    def test_geometry_mismatch_rejected(self):
        def make_trace(comm):
            _, trace = affine_scan(
                comm, AffinePair.identity(4, 0), record=True
            )
            return trace

        trace4 = run_spmd(make_trace, 4).values[0]

        def bad_replay(comm, trace=trace4):
            return replay_scan(comm, np.zeros((4, 1)), trace)

        with pytest.raises(ShapeError, match="geometries differ"):
            run_spmd(bad_replay, 2)

    def test_bad_panel_shape(self):
        def program(comm):
            _, trace = affine_scan(comm, AffinePair.identity(4, 0), record=True)
            return replay_scan(comm, np.zeros((5, 1)), trace)

        with pytest.raises(ShapeError):
            run_spmd(program, 2)

    def test_trace_records_rounds(self):
        def program(comm):
            _, trace = affine_scan(comm, AffinePair.identity(6, 0), record=True)
            return (len(trace.recv_a), trace.a_exclusive.shape, trace.nbytes > 0)

        res = run_spmd(program, 8)
        assert res.values[0] == (3, (6, 6), True)

    def test_no_trace_by_default(self):
        def program(comm):
            _, trace = affine_scan(comm, AffinePair.identity(4, 0))
            return trace

        assert run_spmd(program, 2).values == [None, None]


class TestMessageEconomy:
    def test_replay_ships_less_than_factor(self):
        """Replay messages carry only (2M, R) panels, not (2M)^2 matrices —
        the bandwidth half of the acceleration."""
        dim, width, p = 16, 1, 4
        mats = _random_pairs(p, dim, 0, seed=7)
        rng = np.random.default_rng(8)
        panels = [rng.standard_normal((dim, width)) for _ in range(p)]

        def factor(comm):
            affine_scan(comm, mats[comm.rank], record=True)

        def both(comm):
            _, trace = affine_scan(comm, mats[comm.rank], record=True)
            comm.stats.bytes_sent = 0  # isolate replay traffic
            replay_scan(comm, panels[comm.rank], trace)
            return comm.stats.bytes_sent

        factor_bytes = run_spmd(factor, p).total_bytes_sent
        replay_bytes = sum(run_spmd(both, p).values)
        assert replay_bytes * 8 < factor_bytes
