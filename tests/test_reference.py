"""Tests for the independent reference solvers."""

import numpy as np
import pytest

from repro.exceptions import SingularBlockError
from repro.linalg.blocktridiag import BlockTridiagonalMatrix
from repro.linalg.reference import banded_solve, dense_solve, sparse_solve
from repro.workloads import helmholtz_block_system, random_block_dd_system, random_rhs

SOLVERS = [dense_solve, banded_solve, sparse_solve]


@pytest.mark.parametrize("solver", SOLVERS)
class TestReferenceSolvers:
    def test_residual(self, solver):
        mat, _ = random_block_dd_system(8, 3, seed=0)
        b = random_rhs(8, 3, nrhs=2, seed=1)
        assert mat.residual(solver(mat, b), b) < 1e-10

    def test_single_rhs_layout(self, solver):
        mat, _ = helmholtz_block_system(6, 2)
        flat = random_rhs(6, 2, 1, seed=2).reshape(12)
        assert solver(mat, flat).shape == (12,)

    def test_single_block(self, solver):
        mat, _ = random_block_dd_system(1, 4, seed=3)
        b = random_rhs(1, 4, nrhs=3, seed=4)
        assert mat.residual(solver(mat, b), b) < 1e-11


def test_solvers_agree_pairwise():
    mat, _ = helmholtz_block_system(10, 3)
    b = random_rhs(10, 3, nrhs=2, seed=5)
    xs = [solver(mat, b) for solver in SOLVERS]
    np.testing.assert_allclose(xs[0], xs[1], rtol=1e-9, atol=1e-11)
    np.testing.assert_allclose(xs[0], xs[2], rtol=1e-9, atol=1e-11)


def test_dense_singular_raises():
    zeros = np.zeros((1, 2, 2))
    mat = BlockTridiagonalMatrix(None, zeros, None)
    with pytest.raises(SingularBlockError):
        dense_solve(mat, np.ones((1, 2, 1)))
