"""Flight recorder + cross-rank incident bundles (docs/INCIDENTS.md).

The scenario tests force each runtime failure the recorder exists for —
deadlock, collective divergence, a dead rank, a service deadline breach,
an admission-reject storm, a health page — on **both** execution
backends where the failure exists, then assert the incident bundle is
loadable and that ``postmortem`` names the right rank and operation.
Programs are module-level functions so the process backend can pickle
them (same rule as ``test_comm_conformance``).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.comm import run_spmd
from repro.comm.mp import shutdown_pool
from repro.config import config_context
from repro.exceptions import (
    CommError,
    DeadlineExceededError,
    DeadlockError,
    ReproError,
    ServiceOverloadError,
    SpmdDivergenceError,
)
from repro.obs import (
    RECORD_FIELDS,
    FlightRecorder,
    IncidentStore,
    analyze_bundle,
    classify_reason,
    current_flightrec,
    flight_recording,
    force_synthetic_incident,
    load_bundle,
    note_event,
    recent_notes,
    render_text,
    run_postmortem,
    to_chrome,
)
from repro.service import SolverService
from repro.workloads import helmholtz_block_system, random_rhs

BACKENDS = ("threads", "processes")


@pytest.fixture(scope="module", autouse=True)
def _teardown_pool():
    yield
    shutdown_pool()


def _incident_paths() -> list[pathlib.Path]:
    root = pathlib.Path(os.environ["REPRO_INCIDENT_DIR"])
    if not root.is_dir():
        return []
    return sorted(root.glob("INCIDENT_*.json"))


# ---------------------------------------------------------------------------
# programs (module level: must be picklable for the process backend)
# ---------------------------------------------------------------------------

def prog_cycle(comm):
    """Every rank waits on its right neighbour: a full wait-for cycle."""
    return comm.recv(source=(comm.rank + 1) % comm.size, tag=9)


def prog_divergent(comm):
    if comm.rank == 1:
        return comm.reduce(comm.rank, root=0)  # repro: noqa[RC101] - seeded bug
    return comm.allreduce(comm.rank)


def prog_die(comm):
    if comm.rank == 1:
        os._exit(11)
    return comm.allreduce(comm.rank)


def prog_raise(comm):
    comm.barrier()
    if comm.rank == 1:
        raise RuntimeError("rank 1 exploded on purpose")
    return comm.rank


def prog_chatter_then_cycle(comm):
    """Some healthy traffic, then a deadlock — the ring has history."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    for i in range(3):
        comm.send(i, right, tag=1)
        comm.recv(source=left, tag=1)
    return comm.recv(source=right, tag=9)


# ---------------------------------------------------------------------------
# FlightRecorder unit behavior
# ---------------------------------------------------------------------------

class TestRecorder:
    def test_capacity_floor(self):
        with pytest.raises(ValueError, match=">= 8"):
            FlightRecorder(0, 4)

    def test_ring_keeps_newest(self):
        rec = FlightRecorder(0, 8)
        for i in range(20):
            rec.record_recv(1, 0, i, 64)
        snap = rec.snapshot()
        assert snap["count"] == 20
        assert len(snap["records"]) == 8
        seqs = [r[RECORD_FIELDS.index("seq")] for r in snap["records"]]
        assert seqs == list(range(12, 20))
        assert snap["dropped"] == 0  # nothing was in flight

    def test_dropped_counts_overwritten_inflight_history(self, caplog):
        rec = FlightRecorder(0, 8)
        rec.record_send(1, 0, seq=100, nbytes=64)  # stays in flight
        for i in range(8):
            rec.record_recv(1, 0, i, 64)  # fills the remaining ring
        assert rec.dropped == 1  # the 8th recv overwrote the live send
        rec.record_recv(1, 0, 8, 64)
        assert rec.dropped == 2
        assert rec.snapshot()["dropped"] == 2

    def test_consumed_send_stops_drop_accounting(self):
        rec = FlightRecorder(0, 8)
        rec.record_send(1, 0, seq=100, nbytes=64)
        rec.mark_consumed(100)
        for i in range(40):
            rec.record_recv(1, 0, i, 64)
        assert rec.dropped == 0

    def test_phase_span_records_boundaries(self):
        rec = FlightRecorder(0, 8)
        with rec.phase_span("scan"):
            rec.record_coll("allreduce", 0, 3)
        kinds = [r[0] for r in rec.snapshot()["records"]]
        assert kinds == ["phase", "coll", "phase_end"]

    def test_installation_is_thread_local_and_nestable(self):
        rec = FlightRecorder(0, 8)
        assert current_flightrec() is None
        with flight_recording(rec):
            assert current_flightrec() is rec
            with flight_recording(None):
                assert current_flightrec() is rec
        assert current_flightrec() is None

    def test_note_events_ride_along(self):
        note_event("plan.selected", method="ard", nranks=4)
        notes = recent_notes()
        assert notes[-1]["kind"] == "plan.selected"
        assert notes[-1]["fields"]["method"] == "ard"


# ---------------------------------------------------------------------------
# forced failures -> loadable bundles naming the culprit (both backends)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
class TestForcedFailures:
    def test_deadlock_bundle_names_blocked_rank_and_op(self, backend):
        with pytest.raises(DeadlockError) as exc_info:
            run_spmd(prog_chatter_then_cycle, 2, backend=backend)
        path = getattr(exc_info.value, "incident_path", None)
        assert path is not None and pathlib.Path(path).is_file()
        bundle = load_bundle(path)
        assert bundle["backend"] == backend
        assert bundle["reason"]["type"] == "deadlock"
        assert set(bundle["rings"]) == {"0", "1"}
        for snap in bundle["rings"].values():
            assert snap is not None  # both rings recovered live
            kinds = {r[0] for r in snap["records"]}
            assert {"send", "recv", "wait"} <= kinds
        analysis = analyze_bundle(bundle)
        assert analysis["culprit_rank"] in (0, 1)
        assert analysis["culprit_op"] == "recv"
        assert analysis["edges"]["matched"] > 0  # the healthy chatter
        assert run_postmortem(path, check=True, verbose=False) == 0

    def test_divergence_bundle(self, backend):
        with pytest.raises(SpmdDivergenceError) as exc_info:
            run_spmd(prog_divergent, 2, verify=True, backend=backend)
        path = getattr(exc_info.value, "incident_path", None)
        assert path is not None
        bundle = load_bundle(path)
        assert bundle["reason"]["type"] == "divergence"
        assert "reduce" in bundle["reason"]["message"]
        analysis = analyze_bundle(bundle)
        assert analysis["culprit_rank"] is not None
        assert run_postmortem(path, check=True, verbose=False) == 0

    def test_dead_rank_bundle(self, backend):
        # The process backend loses a worker outright; the thread
        # backend's closest failure is a rank raising mid-program.
        prog = prog_die if backend == "processes" else prog_raise
        with pytest.raises((CommError, RuntimeError)) as exc_info:
            run_spmd(prog, 2, backend=backend)
        path = getattr(exc_info.value, "incident_path", None)
        assert path is not None
        bundle = load_bundle(path)
        expected = ("worker_death" if backend == "processes"
                    else "exception")
        assert bundle["reason"]["type"] == expected
        assert bundle["reason"]["rank"] == 1
        if backend == "processes":
            # The dead worker's ring is unrecoverable; the survivor's
            # ring must still be in the bundle.
            assert bundle["rings"]["1"] is None
            assert bundle["rings"]["0"] is not None
        analysis = analyze_bundle(bundle)
        assert analysis["culprit_rank"] == 1
        assert run_postmortem(path, check=True, verbose=False) == 0

    def test_service_deadline_breach_bundle(self, backend, monkeypatch):
        monkeypatch.setenv("REPRO_COMM_BACKEND", backend)
        matrix, _ = helmholtz_block_system(12, 3)
        busy, _ = helmholtz_block_system(48, 4)
        b = random_rhs(12, 3, nrhs=1, seed=0)

        class EagerService(SolverService):
            incident_cooldown_s = 0.0

        with EagerService(method="ard", nranks=2, workers=1,
                          batch_window=0.0) as svc:
            handle = svc.register(matrix)
            svc.solve(handle, b)  # warm the cache
            # Unfactored busy job pins the single worker long past the
            # next request's (tiny) queue deadline.
            pending = svc.submit(busy, random_rhs(48, 4, nrhs=4, seed=1))
            ticket = svc.submit(handle, b, deadline=1e-4)
            exc = ticket.exception(timeout=30)
            assert isinstance(exc, DeadlineExceededError)
            path = getattr(exc, "incident_path", None)
            assert path is not None
            bundle = load_bundle(path)
            assert bundle["backend"] == "service"
            assert bundle["reason"]["type"] == "deadline"
            assert bundle["reason"]["op"] == "queued"
            assert bundle["rings"]["0"] is not None  # the worker's ring
            assert run_postmortem(path, check=True, verbose=False) == 0
            assert pending.result(timeout=60) is not None


# ---------------------------------------------------------------------------
# service-only failure paths
# ---------------------------------------------------------------------------

class TestServiceIncidents:
    def test_reject_storm_captures_one_bundle(self, small_system):
        matrix, b = small_system

        class StormService(SolverService):
            incident_cooldown_s = 0.0
            reject_storm_threshold = 3
            reject_storm_window_s = 30.0

        with StormService(method="thomas", nranks=1, workers=1,
                          max_pending=1, batch_window=0.05) as svc:
            handle = svc.register(matrix)
            svc.submit(handle, b)  # fills the admission queue
            captured = None
            for _ in range(6):
                try:
                    svc.submit(handle, b)
                except ServiceOverloadError as exc:
                    captured = getattr(exc, "incident_path", None) or captured
            assert captured is not None
            bundle = load_bundle(captured)
            assert bundle["reason"]["type"] == "reject_storm"
            assert bundle["extra"]["rejects"] == 3

    def test_health_page_captures_bundle(self, small_system):
        from repro.obs import HealthThresholds

        matrix, b = small_system

        class PagingService(SolverService):
            incident_cooldown_s = 0.0

        impossible = HealthThresholds(residual_warn=1e-300,
                                      residual_page=1e-290)
        with PagingService(method="thomas", nranks=1, workers=1,
                           batch_window=0.0, health=impossible) as svc:
            svc.solve(svc.register(matrix), b)
            time.sleep(0.05)  # capture happens on the worker thread
        paths = _incident_paths()
        assert paths, "health page produced no bundle"
        bundle = load_bundle(paths[-1])
        assert bundle["reason"]["type"] == "health_page"
        assert "residual" in bundle["reason"]["message"]

    def test_incidents_route_lists_bundles(self, small_system):
        import urllib.request

        force_synthetic_incident()
        with SolverService(method="thomas", nranks=1, workers=1,
                           expose_http=True) as svc:
            doc = json.load(
                urllib.request.urlopen(svc.http.url + "/incidents"))
        assert doc["enabled"] is True
        assert len(doc["incidents"]) >= 1
        newest = doc["incidents"][0]
        assert newest["type"] == "deadlock"
        assert newest["incident_id"]


# ---------------------------------------------------------------------------
# capture gating, retention, postmortem rendering
# ---------------------------------------------------------------------------

class TestBundleMachinery:
    def test_flightrec_off_disables_capture(self):
        with config_context(flightrec=False):
            with pytest.raises(DeadlockError) as exc_info:
                run_spmd(prog_cycle, 2)
        assert getattr(exc_info.value, "incident_path", None) is None
        assert _incident_paths() == []

    def test_incident_dir_off_disables_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCIDENT_DIR", "off")
        with pytest.raises(DeadlockError):
            run_spmd(prog_cycle, 2)
        assert not IncidentStore().enabled

    def test_retention_prunes_oldest(self):
        store = IncidentStore(retention=2)
        for i in range(4):
            store.write({"incident_id": f"id{i}", "reason": {}})
            time.sleep(0.01)  # distinct mtimes for deterministic order
        assert len(store.paths()) == 2
        assert [p.name for p in store.paths()] == [
            "INCIDENT_id3.json", "INCIDENT_id2.json"]

    def test_schema_version_mismatch_rejected(self, tmp_path):
        bad = tmp_path / "INCIDENT_bad.json"
        bad.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ReproError, match="schema"):
            load_bundle(bad)

    def test_classify_reason_rank_fallbacks(self):
        exc = CommError("rank 3 worker process died unexpectedly")
        reason = classify_reason(exc)
        assert reason["type"] == "worker_death"
        assert reason["rank"] == 3
        tagged = DeadlockError("stuck")
        tagged.failed_rank = 5
        assert classify_reason(tagged)["rank"] == 5

    def test_render_text_and_chrome_and_json(self, capsys):
        path = force_synthetic_incident()
        bundle = load_bundle(path)
        text = render_text(bundle, analyze_bundle(bundle))
        assert "verdict" in text
        assert "rank 0" in text and "rank 1" in text
        events = to_chrome(bundle)["traceEvents"]
        assert any(e["ph"] == "i" for e in events)
        assert run_postmortem(path, as_json=True, verbose=True) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["reason"]["type"] == "deadlock"

    def test_postmortem_defaults_to_newest_bundle(self):
        force_synthetic_incident()
        assert run_postmortem(None, check=True, verbose=False) == 0

    def test_postmortem_without_bundles_exits_2(self):
        assert run_postmortem(None, verbose=False) == 2

    def test_chrome_out_written(self, tmp_path):
        path = force_synthetic_incident()
        out = tmp_path / "incident.trace.json"
        assert run_postmortem(path, chrome_out=out, verbose=False) == 0
        assert json.loads(out.read_text())["traceEvents"]


class TestHarnessCli:
    def test_postmortem_synthetic_check(self, capsys):
        from repro.harness.__main__ import main

        assert main(["postmortem", "--synthetic", "--check"]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "postmortem --check: OK" in out


# ---------------------------------------------------------------------------
# worker-death diagnostics (satellite: enriched CommError)
# ---------------------------------------------------------------------------

class TestWorkerDeathDiagnostics:
    def test_death_error_reports_heartbeat_and_counts(self):
        with pytest.raises(CommError) as exc_info:
            run_spmd(prog_die, 2, backend="processes")
        message = str(exc_info.value)
        assert "rank 1 worker process died unexpectedly" in message
        assert "exit code" in message
        assert "heartbeat" in message
        assert ("envelope(s) sent" in message
                or "no send/receive counts reported" in message)
        assert exc_info.value.failed_rank == 1
