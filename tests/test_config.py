"""Tests for repro.config."""

import threading

import numpy as np
import pytest

from repro.config import ReproConfig, config_context, get_config, install_config, set_config
from repro.exceptions import ConfigError


class TestReproConfig:
    def test_defaults(self):
        cfg = ReproConfig()
        assert cfg.dtype == np.float64
        assert cfg.flop_counting is False
        assert 0 < cfg.singularity_rcond < 1

    def test_dtype_normalized(self):
        cfg = ReproConfig(dtype=np.float32)
        assert cfg.dtype == np.dtype(np.float32)

    def test_complex_dtype_allowed(self):
        cfg = ReproConfig(dtype=np.complex128)
        assert cfg.dtype.kind == "c"

    def test_integer_dtype_rejected(self):
        with pytest.raises(ConfigError):
            ReproConfig(dtype=np.int32)

    def test_bad_rcond_rejected(self):
        with pytest.raises(ConfigError):
            ReproConfig(singularity_rcond=0.0)
        with pytest.raises(ConfigError):
            ReproConfig(singularity_rcond=1.5)

    def test_bad_growth_threshold_rejected(self):
        with pytest.raises(ConfigError):
            ReproConfig(growth_warn_threshold=0.5)

    def test_frozen(self):
        cfg = ReproConfig()
        with pytest.raises(Exception):
            cfg.flop_counting = True

    def test_kernel_defaults(self):
        cfg = ReproConfig()
        assert cfg.blockops_backend == "batched"
        assert cfg.recurrence_mode == "auto"

    def test_blockops_backend_validated(self):
        assert ReproConfig(blockops_backend="scipy_loop").blockops_backend == "scipy_loop"
        with pytest.raises(ConfigError, match="blockops_backend"):
            ReproConfig(blockops_backend="cublas")

    def test_recurrence_mode_validated(self):
        for mode in ("auto", "sequential", "levelwise"):
            assert ReproConfig(recurrence_mode=mode).recurrence_mode == mode
        with pytest.raises(ConfigError, match="recurrence_mode"):
            ReproConfig(recurrence_mode="vectorized")


class TestGlobalConfig:
    def test_get_returns_default(self):
        assert isinstance(get_config(), ReproConfig)

    def test_set_and_restore(self):
        original = get_config()
        try:
            new = set_config(flop_counting=True)
            assert new.flop_counting is True
            assert get_config() is new
        finally:
            install_config(original)

    def test_set_unknown_field(self):
        with pytest.raises(ConfigError, match="unknown config fields"):
            set_config(nonexistent=1)

    def test_context_restores(self):
        before = get_config()
        with config_context(flop_counting=True) as cfg:
            assert cfg.flop_counting is True
            assert get_config().flop_counting is True
        assert get_config() is before

    def test_context_restores_on_error(self):
        before = get_config()
        with pytest.raises(RuntimeError):
            with config_context(flop_counting=True):
                raise RuntimeError("boom")
        assert get_config() is before

    def test_thread_isolation(self):
        seen = {}

        def other():
            seen["flag"] = get_config().flop_counting

        with config_context(flop_counting=True):
            t = threading.Thread(target=other)  # repro: noqa[RC103]
            t.start()
            t.join()
        assert seen["flag"] is False

    def test_install_config_type_check(self):
        with pytest.raises(ConfigError):
            install_config("not a config")

    def test_install_config_roundtrip(self):
        original = get_config()
        replacement = ReproConfig(flop_counting=True)
        install_config(replacement)
        try:
            assert get_config() is replacement
        finally:
            install_config(original)
