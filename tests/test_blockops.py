"""Tests for batched block kernels (repro.linalg.blockops)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import config_context
from repro.exceptions import ShapeError, SingularBlockError
from repro.linalg.blockops import (
    BatchedLU,
    as_block_batch,
    gemm,
    gemm_add,
    identity_blocks,
    solve_blocks,
    transpose_blocks,
)
from repro.util.flops import counting_flops


def _spd_batch(rng, n, m):
    a = rng.standard_normal((n, m, m))
    return a + m * np.eye(m)


class TestValidation:
    def test_as_block_batch_ok(self):
        a = np.zeros((2, 3, 3))
        assert as_block_batch(a) is a

    def test_as_block_batch_rejects_nonsquare(self):
        with pytest.raises(ShapeError):
            as_block_batch(np.zeros((2, 3, 4)))

    def test_as_block_batch_rejects_2d(self):
        with pytest.raises(ShapeError):
            as_block_batch(np.zeros((3, 3)))


class TestGemm:
    def test_matches_matmul(self, rng):
        a = rng.standard_normal((4, 3, 3))
        b = rng.standard_normal((4, 3, 5))
        np.testing.assert_allclose(gemm(a, b), a @ b)

    def test_counts_flops(self, rng):
        a = rng.standard_normal((4, 3, 3))
        b = rng.standard_normal((4, 3, 5))
        with config_context(flop_counting=True), counting_flops() as fc:
            gemm(a, b)
        assert fc.by_kernel["gemm"] == 4 * 2 * 3 * 3 * 5

    def test_no_counting_by_default(self, rng):
        a = rng.standard_normal((2, 2, 2))
        with counting_flops() as fc:
            gemm(a, a)
        assert fc.total == 0

    def test_2d_inputs(self, rng):
        a = rng.standard_normal((3, 3))
        with config_context(flop_counting=True), counting_flops() as fc:
            gemm(a, a)
        assert fc.by_kernel["gemm"] == 2 * 27

    def test_gemm_add(self, rng):
        a = rng.standard_normal((2, 3, 3))
        b = rng.standard_normal((2, 3, 2))
        c = rng.standard_normal((2, 3, 2))
        np.testing.assert_allclose(gemm_add(a, b, c), a @ b + c)


class TestHelpers:
    def test_identity_blocks(self):
        eye = identity_blocks(3, 4)
        assert eye.shape == (3, 4, 4)
        for i in range(3):
            np.testing.assert_array_equal(eye[i], np.eye(4))

    def test_transpose_blocks(self, rng):
        a = rng.standard_normal((2, 3, 3))
        t = transpose_blocks(a)
        np.testing.assert_array_equal(t[1], a[1].T)

    def test_solve_blocks(self, rng):
        a = _spd_batch(rng, 3, 4)
        b = rng.standard_normal((3, 4, 2))
        x = solve_blocks(a, b)
        np.testing.assert_allclose(a @ x, b, atol=1e-10)

    def test_solve_blocks_singular(self):
        a = np.zeros((1, 2, 2))
        with pytest.raises(SingularBlockError):
            solve_blocks(a, np.ones((1, 2, 1)))


class TestBatchedLU:
    def test_solve_matches_direct(self, rng):
        a = _spd_batch(rng, 5, 3)
        b = rng.standard_normal((5, 3, 4))
        lu = BatchedLU(a)
        np.testing.assert_allclose(lu.solve(b), np.linalg.solve(a, b), atol=1e-10)

    def test_solve_single_vector_layout(self, rng):
        a = _spd_batch(rng, 4, 3)
        b = rng.standard_normal((4, 3))
        x = lu_x = BatchedLU(a).solve(b)
        assert x.shape == (4, 3)
        np.testing.assert_allclose(
            np.einsum("nij,nj->ni", a, lu_x), b, atol=1e-10
        )

    def test_transposed_solve(self, rng):
        a = _spd_batch(rng, 3, 4)
        b = rng.standard_normal((3, 4, 2))
        x = BatchedLU(a).solve(b, transposed=True)
        np.testing.assert_allclose(np.swapaxes(a, 1, 2) @ x, b, atol=1e-10)

    def test_solve_one(self, rng):
        a = _spd_batch(rng, 3, 4)
        b = rng.standard_normal((4, 2))
        x = BatchedLU(a).solve_one(1, b)
        np.testing.assert_allclose(a[1] @ x, b, atol=1e-10)

    def test_solve_one_out_of_range(self, rng):
        lu = BatchedLU(_spd_batch(rng, 2, 3))
        with pytest.raises(ShapeError):
            lu.solve_one(5, np.zeros(3))

    def test_singular_block_reported_with_offset(self):
        blocks = np.stack([np.eye(3), np.zeros((3, 3))])
        with pytest.raises(SingularBlockError) as exc:
            BatchedLU(blocks, block_offset=10)
        assert exc.value.block_index == 11

    def test_nonfinite_block_flagged(self):
        """NaN/inf inputs must raise, not slip through the diagonal
        check (NaN comparisons are always False) — regression test for
        the overflowed-closing-system path."""
        for bad in (np.nan, np.inf):
            block = np.array([[[1.0, 0.0], [0.0, bad]]])
            with pytest.raises(SingularBlockError, match="non-finite"):
                BatchedLU(block)

    def test_nearly_singular_flagged(self):
        block = np.diag([1.0, 1e-16])[None]
        with pytest.raises(SingularBlockError):
            BatchedLU(block)

    def test_check_singular_disabled(self):
        import warnings

        block = np.diag([1.0, 0.0])[None]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # scipy's LinAlgWarning
            lu = BatchedLU(block, check_singular=False)
        assert lu.n == 1

    def test_rhs_shape_mismatch(self, rng):
        lu = BatchedLU(_spd_batch(rng, 2, 3))
        with pytest.raises(ShapeError):
            lu.solve(np.zeros((3, 3, 1)))

    def test_flop_accounting(self, rng):
        a = _spd_batch(rng, 4, 3)
        with config_context(flop_counting=True), counting_flops() as fc:
            lu = BatchedLU(a)
            lu.solve(rng.standard_normal((4, 3, 2)))
        assert fc.by_kernel["lu"] == 4 * (2 * 27 // 3)
        assert fc.by_kernel["trsm"] == 4 * 2 * 9 * 2

    def test_copy_independent(self, rng):
        lu = BatchedLU(_spd_batch(rng, 2, 3))
        dup = lu.copy()
        dup._lu[:] = 0.0
        assert not np.allclose(lu._lu, 0.0)

    def test_nbytes_positive(self, rng):
        assert BatchedLU(_spd_batch(rng, 2, 3)).nbytes > 0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 6), st.integers(1, 5), st.integers(1, 4),
           st.integers(0, 1000))
    def test_property_solve_roundtrip(self, n, m, r, seed):
        rng = np.random.default_rng(seed)
        a = _spd_batch(rng, n, m)
        b = rng.standard_normal((n, m, r))
        x = BatchedLU(a).solve(b)
        np.testing.assert_allclose(a @ x, b, atol=1e-8)
