"""Tests for accelerated recursive doubling — the paper's contribution."""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.core.ard import (
    ARDFactorization,
    ard_factor_spmd,
    ard_solve_spmd,
)
from repro.core.distribute import distribute_matrix, distribute_rhs, gather_solution
from repro.exceptions import ShapeError
from repro.linalg.reference import dense_solve
from repro.workloads import helmholtz_block_system, random_rhs


def _ard_spmd(matrix, b, nranks):
    chunks = distribute_matrix(matrix, nranks)
    d_chunks = distribute_rhs(b, nranks)

    def program(comm, chunk, d):
        state = ard_factor_spmd(comm, chunk)
        return ard_solve_spmd(comm, state, d)

    result = run_spmd(
        program, nranks, rank_args=[(c, d) for c, d in zip(chunks, d_chunks)]
    )
    return gather_solution(list(result.values)), result


@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
class TestArdCorrectness:
    def test_matches_dense(self, p):
        mat, _ = helmholtz_block_system(17, 3)
        b = random_rhs(17, 3, nrhs=4, seed=0)
        x, _ = _ard_spmd(mat, b, p)
        np.testing.assert_allclose(x, dense_solve(mat, b), rtol=1e-8, atol=1e-10)

    def test_matches_rd(self, p):
        from repro.core.rd import rd_solve_spmd

        mat, _ = helmholtz_block_system(13, 2)
        b = random_rhs(13, 2, nrhs=3, seed=1)
        x_ard, _ = _ard_spmd(mat, b, p)
        chunks = distribute_matrix(mat, p)
        d_chunks = distribute_rhs(b, p)
        res = run_spmd(
            rd_solve_spmd, p,
            rank_args=[(c, d) for c, d in zip(chunks, d_chunks)],
        )
        x_rd = gather_solution(list(res.values))
        np.testing.assert_allclose(x_ard, x_rd, rtol=1e-9, atol=1e-11)

    def test_single_block(self, p):
        mat, _ = helmholtz_block_system(1, 4)
        b = random_rhs(1, 4, nrhs=2, seed=2)
        x, _ = _ard_spmd(mat, b, p)
        assert mat.residual(x, b) < 1e-11

    def test_more_ranks_than_rows(self, p):
        mat, _ = helmholtz_block_system(2, 3)
        b = random_rhs(2, 3, nrhs=2, seed=3)
        x, _ = _ard_spmd(mat, b, p)
        assert mat.residual(x, b) < 1e-11


class TestFactorSolveSplit:
    def test_one_factor_many_solves(self):
        mat, _ = helmholtz_block_system(12, 3)
        chunks = distribute_matrix(mat, 3)
        bs = [random_rhs(12, 3, nrhs=r, seed=r) for r in (1, 2, 7)]
        d_sets = [distribute_rhs(b, 3) for b in bs]

        def program(comm, chunk):
            state = ard_factor_spmd(comm, chunk)
            return [ard_solve_spmd(comm, state, d[comm.rank]) for d in d_sets]

        result = run_spmd(program, 3, rank_args=[(c,) for c in chunks])
        for idx, b in enumerate(bs):
            x = gather_solution([result.values[r][idx] for r in range(3)])
            assert mat.residual(x, b) < 1e-10

    def test_factor_stores_no_rhs_work(self):
        """The factor phase must never touch triangular solves with
        RHS-sized panels (its trsm traffic is T1/T2 construction only)."""
        mat, _ = helmholtz_block_system(8, 4)
        chunks = distribute_matrix(mat, 2)

        res = run_spmd(ard_factor_spmd, 2, rank_args=[(c,) for c in chunks])
        state = res.values[0]
        assert state.trace is not None
        assert state.ops.ntransfer > 0
        assert res.total_flops > 0

    def test_solve_cheaper_than_factor_in_matrix_work(self):
        """Solve-phase flops are O(M^2 R) per row: for R << M they must be
        far below the factor phase's O(M^3)."""
        m = 16
        mat, _ = helmholtz_block_system(32, m)
        chunks = distribute_matrix(mat, 2)
        d = distribute_rhs(random_rhs(32, m, 1, seed=4), 2)

        def program(comm, chunk, drows):
            state = ard_factor_spmd(comm, chunk)
            comm.stats.bytes_sent = 0
            from repro.util.flops import current_counter

            before = current_counter().total
            ard_solve_spmd(comm, state, drows)
            return current_counter().total - before

        res = run_spmd(program, 2, rank_args=[(c, dd) for c, dd in zip(chunks, d)])
        solve_flops = max(res.values)
        factor_flops = max(s.flops for s in res.stats) - solve_flops
        assert solve_flops * 5 < factor_flops

    def test_state_nbytes(self):
        mat, _ = helmholtz_block_system(8, 3)
        chunks = distribute_matrix(mat, 2)
        res = run_spmd(ard_factor_spmd, 2, rank_args=[(c,) for c in chunks])
        assert all(s.nbytes > 0 for s in res.values)


class TestDriverFactorization:
    def test_solve_and_residual(self):
        mat, _ = helmholtz_block_system(16, 4)
        fact = ARDFactorization(mat, nranks=4)
        b = random_rhs(16, 4, nrhs=8, seed=5)
        x = fact.solve(b)
        assert mat.residual(x, b) < 1e-10

    def test_repeated_solves_varied_r(self):
        mat, _ = helmholtz_block_system(10, 3)
        fact = ARDFactorization(mat, nranks=2)
        for r in (1, 3, 9):
            b = random_rhs(10, 3, nrhs=r, seed=r)
            assert mat.residual(fact.solve(b), b) < 1e-10

    def test_rhs_layouts(self):
        mat, _ = helmholtz_block_system(6, 2)
        fact = ARDFactorization(mat, nranks=2)
        flat = random_rhs(6, 2, 1, seed=6).reshape(12)
        assert fact.solve(flat).shape == (12,)
        two_d = random_rhs(6, 2, 3, seed=7).reshape(12, 3)
        assert fact.solve(two_d).shape == (12, 3)

    def test_phase_results_exposed(self):
        mat, _ = helmholtz_block_system(8, 2)
        fact = ARDFactorization(mat, nranks=2)
        assert fact.factor_virtual_time > 0
        assert fact.last_solve_result is None
        fact.solve(random_rhs(8, 2, 2, seed=8))
        assert fact.last_solve_result.virtual_time > 0
        assert fact.nbytes > 0

    def test_validation(self):
        mat, _ = helmholtz_block_system(4, 2)
        with pytest.raises(ShapeError):
            ARDFactorization(np.eye(8), nranks=2)
        with pytest.raises(ShapeError):
            ARDFactorization(mat, nranks=0)


class TestAcceleration:
    def test_solve_flops_linear_in_r_without_m3_term(self):
        """Headline property: per-RHS cost has no M^3 component."""
        m = 12
        mat, _ = helmholtz_block_system(24, m)
        fact = ARDFactorization(mat, nranks=4)
        flops = {}
        for r in (1, 8):
            fact.solve(random_rhs(24, m, r, seed=9))
            flops[r] = fact.last_solve_result.total_flops
        # Perfectly linear in R (same code path, panels widen only).
        assert flops[8] / flops[1] == pytest.approx(8.0, rel=0.05)

    def test_ard_beats_rd_in_virtual_time(self):
        from repro.core.distribute import distribute_matrix as dm
        from repro.core.rd import rd_solve_spmd

        mat, _ = helmholtz_block_system(32, 8)
        r = 16
        b = random_rhs(32, 8, r, seed=10)
        fact = ARDFactorization(mat, nranks=4)
        fact.solve(b)
        ard_vt = fact.factor_result.virtual_time + fact.last_solve_result.virtual_time
        chunks = dm(mat, 4)
        d_chunks = distribute_rhs(b, 4)
        rd_res = run_spmd(
            rd_solve_spmd, 4,
            rank_args=[(c, d) for c, d in zip(chunks, d_chunks)],
        )
        assert rd_res.virtual_time > 3.0 * ard_vt

    def test_factor_message_volume_exceeds_solve(self):
        mat, _ = helmholtz_block_system(32, 16)
        fact = ARDFactorization(mat, nranks=4)
        fact.solve(random_rhs(32, 16, 1, seed=11))
        assert (
            fact.factor_result.total_bytes_sent
            > fact.last_solve_result.total_bytes_sent
        )
