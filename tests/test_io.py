"""Tests for factorization persistence (repro.io)."""

import pickle

import numpy as np
import pytest

from repro import io
from repro.core import (
    ARDFactorization,
    CyclicReductionFactorization,
    SpikeFactorization,
    ThomasFactorization,
)
from repro.exceptions import ReproError
from repro.workloads import (
    helmholtz_block_system,
    poisson_block_system,
    random_rhs,
)


@pytest.fixture
def systems():
    oscillatory, _ = helmholtz_block_system(12, 3)
    dominant, _ = poisson_block_system(12, 3)
    b = random_rhs(12, 3, nrhs=2, seed=0)
    return oscillatory, dominant, b


class TestRoundTrip:
    def test_ard(self, systems, tmp_path):
        mat, _, b = systems
        fact = ARDFactorization(mat, nranks=3)
        path = io.save(tmp_path / "f.repro", fact)
        loaded = io.load(path)
        np.testing.assert_allclose(loaded.solve(b), fact.solve(b), atol=1e-14)

    def test_spike(self, systems, tmp_path):
        _, mat, b = systems
        fact = SpikeFactorization(mat, nranks=3)
        loaded = io.load(io.save(tmp_path / "f.repro", fact))
        np.testing.assert_allclose(loaded.solve(b), fact.solve(b), atol=1e-14)

    def test_thomas_and_cyclic(self, systems, tmp_path):
        _, mat, b = systems
        for cls in (ThomasFactorization, CyclicReductionFactorization):
            fact = cls(mat)
            loaded = io.load(io.save(tmp_path / "f.repro", fact))
            np.testing.assert_allclose(loaded.solve(b), fact.solve(b),
                                       atol=1e-14)

    def test_matrix(self, systems, tmp_path):
        mat, _, _ = systems
        loaded = io.load(io.save(tmp_path / "m.repro", mat))
        assert loaded.allclose(mat)

    def test_banded(self, tmp_path):
        from repro.banded import BandedARDFactorization
        from repro.workloads import banded_oscillatory_system

        mat, _ = banded_oscillatory_system(12, 2, bandwidth=2, seed=0)
        b = random_rhs(12, 2, nrhs=2, seed=1)
        fact = BandedARDFactorization(mat, nranks=3)
        loaded = io.load(io.save(tmp_path / "f.repro", fact))
        np.testing.assert_allclose(loaded.solve(b), fact.solve(b), atol=1e-14)
        loaded_mat = io.load(io.save(tmp_path / "m.repro", mat),
                             expect="BlockBandedMatrix")
        assert loaded_mat.allclose(mat)

    def test_loaded_supports_refine(self, systems, tmp_path):
        _, mat, b = systems
        fact = io.load(io.save(tmp_path / "f.repro",
                               ThomasFactorization(mat)))
        assert mat.residual(fact.solve(b, refine=1), b) < 1e-13


class TestValidation:
    def test_unsupported_object(self, tmp_path):
        with pytest.raises(ReproError, match="cannot save"):
            io.save(tmp_path / "x.repro", {"not": "savable"})

    def test_not_a_save_file(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"garbage that is not a pickle")
        with pytest.raises(io.FormatError):
            io.load(path)

    def test_wrong_header_magic(self, tmp_path):
        path = tmp_path / "bad.repro"
        with open(path, "wb") as fh:
            pickle.dump({"magic": "something-else"}, fh)
            pickle.dump(123, fh)
        with pytest.raises(io.FormatError, match="bad header"):
            io.load(path)

    def test_expect_mismatch(self, systems, tmp_path):
        mat, _, _ = systems
        path = io.save(tmp_path / "m.repro", mat)
        with pytest.raises(io.FormatError, match="expected"):
            io.load(path, expect="ARDFactorization")
        loaded = io.load(path, expect="BlockTridiagonalMatrix")
        assert loaded.nblocks == 12

    def test_header_payload_mismatch(self, tmp_path):
        path = tmp_path / "forged.repro"
        with open(path, "wb") as fh:
            pickle.dump({"magic": "repro-factorization-v1",
                         "class": "ARDFactorization"}, fh)
            pickle.dump([1, 2, 3], fh)
        with pytest.raises(io.FormatError, match="payload"):
            io.load(path)


class TestStatsJson:
    def test_documents_are_schema_stamped(self, tmp_path):
        import datetime
        import json

        path = io.write_stats_json(tmp_path / "doc.stats.json",
                                   {"metric": 1.5})
        doc = json.loads(path.read_text())
        assert doc["metric"] == 1.5
        assert doc["schema_version"] == io.STATS_SCHEMA_VERSION
        # written_at parses as an aware ISO-8601 UTC timestamp.
        ts = datetime.datetime.fromisoformat(doc["written_at"])
        assert ts.utcoffset() == datetime.timedelta(0)

    def test_caller_stamps_win(self, tmp_path):
        import json

        path = io.write_stats_json(
            tmp_path / "doc.stats.json",
            {"schema_version": 99, "written_at": "then"},
        )
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == 99
        assert doc["written_at"] == "then"

    def test_caller_document_not_mutated(self, tmp_path):
        original = {"metric": 1}
        io.write_stats_json(tmp_path / "doc.stats.json", original)
        assert original == {"metric": 1}

    def test_accepts_str_path_and_numpy_values(self, tmp_path):
        import json

        path = io.write_stats_json(
            str(tmp_path / "doc.stats.json"),
            {"n": np.int64(3), "t": np.float64(0.5),
             "v": np.arange(2.0)},
        )
        doc = json.loads(path.read_text())
        assert doc["n"] == 3 and doc["t"] == 0.5 and doc["v"] == [0.0, 1.0]
