"""Planner tests: cold start, table persistence, evidence grades, guard.

Covers the ``repro.perfmodel.planner`` contracts that the benchmarks
cannot pin deterministically: the pure-model cold start matches the
analytic ranking, stale/foreign tables are rejected or ignored rather
than silently trusted, dtype fallback demotes its evidence to
``provenance="model"``, interpolation has bounded reach, and the
``method="auto"`` dispatch in :func:`repro.core.api.solve` follows the
installed table.  Also the drift tests pinning the planner portfolio
against the API's method lists (the OP_TABLE conformance pattern from
``test_proto.py``) and the tunable-threshold config plumbing.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.config import TUNABLE_THRESHOLDS, config_context, get_config, set_config
from repro.core.api import FACTOR_METHODS, SOLVE_METHODS, solve
from repro.exceptions import ConfigError
from repro.perfmodel.planner import (
    MAX_INTERP_DISTANCE,
    MODEL_MARGIN,
    PLAN_METHODS,
    TUNE_SCHEMA_VERSION,
    TuneEntry,
    TuningTable,
    apply_tuning,
    clear_plan_cache,
    host_fingerprint,
    load_table,
    plan,
    save_table,
    set_default_table,
    tune_machine,
)
from repro.perfmodel.predictor import PREDICTABLE_METHODS, predict_time
from repro.workloads import helmholtz_block_system, random_rhs

#: Methods the planner simulates on ``p`` ranks (mirrors the planner's
#: portfolio split; sequential methods plan single-rank).
DISTRIBUTED = {"ard", "rd", "spike"}

#: Direct factorizations outside the planner portfolio: not iterative
#: block-tridiagonal methods, no cost model, never planned.  A method
#: added to SOLVE_METHODS must land here *or* in PLAN_METHODS — the
#: drift test below fails otherwise.
DIRECT_METHODS = {"dense", "banded", "sparse"}


@pytest.fixture(autouse=True)
def _fresh_planner_state():
    """Isolate the process-wide table override and plan memo per test."""
    clear_plan_cache()
    yield
    clear_plan_cache()


def _entry(time, *, shape=(64, 8, 4, 8), dtype="float64", method="ard",
           comm_backend="threads", recurrence_mode="auto",
           blockops_backend="batched", provenance="measured"):
    n, m, p, r = shape
    return TuneEntry(n=n, m=m, p=p, r=r, dtype=dtype, method=method,
                     schedule="kogge_stone", comm_backend=comm_backend,
                     recurrence_mode=recurrence_mode,
                     blockops_backend=blockops_backend,
                     time=time, provenance=provenance)


def _table(entries, host=None, thresholds=None):
    return TuningTable(host=host if host is not None else host_fingerprint(),
                       thresholds=dict(thresholds or TUNABLE_THRESHOLDS),
                       entries=tuple(entries))


def _model_ranking(n, m, p, r):
    """The analytic model's per-method predictions, as plan() sees them."""
    return {
        meth: predict_time(meth, n=n, m=m,
                           p=p if meth in DISTRIBUTED else 1, r=r)
        for meth in PLAN_METHODS
    }


class TestColdStart:
    @pytest.mark.parametrize("shape", [(256, 8, 4, 8), (64, 4, 1, 1),
                                       (2048, 4, 8, 64)])
    def test_matches_model_ranking_under_guard(self, shape):
        """With no table the plan is the model's argmin — unless the
        never-lose guard clamps a marginal non-ARD winner back to the
        reference."""
        n, m, p, r = shape
        preds = _model_ranking(n, m, p, r)
        best_method = min(preds, key=preds.get)
        result = plan(n, m, p, r, table=None, calibration=None)
        assert result.provenance == "model"
        if best_method == "ard":
            assert result.method == "ard"
            assert not result.clamped
        elif preds[best_method] <= preds["ard"] * (1 - MODEL_MARGIN):
            assert result.method == best_method
            assert not result.clamped
        else:
            assert result.method == "ard"
            assert result.clamped
        if result.method == "ard" or result.clamped:
            # Reference configuration: shipped kernel defaults.
            assert result.blockops_backend == "batched"
            assert result.recurrence_mode == "auto"
        assert result.schedule == "kogge_stone"
        expect_ranks = p if result.method in DISTRIBUTED else 1
        assert result.nranks == expect_ranks

    def test_invalid_shape_and_method_rejected(self):
        with pytest.raises(ConfigError):
            plan(0, 8, table=None)
        with pytest.raises(ConfigError):
            plan(64, 8, methods=("ard", "dense"), table=None)


class TestTablePersistence:
    def test_roundtrip(self, tmp_path):
        table = _table([_entry(0.5), _entry(1.5, method="thomas")])
        path = save_table(table, tmp_path / "TUNE_host.json")
        loaded = load_table(path)
        assert loaded is not None
        assert loaded.entries == table.entries
        assert loaded.thresholds == table.thresholds

    def test_stale_schema_rejected(self, tmp_path):
        path = save_table(_table([_entry(0.5)]), tmp_path / "t.json")
        data = json.loads(path.read_text())
        data["schema_version"] = TUNE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigError, match="schema_version"):
            load_table(path)

    def test_unknown_threshold_rejected(self):
        data = _table([_entry(0.5)]).to_dict()
        data["thresholds"]["bogus_knob"] = 7
        with pytest.raises(ConfigError, match="bogus_knob"):
            TuningTable.from_dict(data)

    def test_host_mismatch_warned_and_ignored(self, tmp_path):
        table = _table([_entry(0.5)], host="other-machine/cpu64")
        path = save_table(table, tmp_path / "t.json")
        with pytest.warns(RuntimeWarning, match="other-machine"):
            assert load_table(path) is None
        with pytest.raises(ConfigError, match="other-machine"):
            load_table(path, strict_host=True)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="harness tune"):
            load_table(tmp_path / "absent.json")


class TestEvidenceGrades:
    SHAPE = (64, 8, 4, 8)

    def _measured_table(self):
        # Thomas measured clearly fastest; the reference ARD config
        # measured too, so every grade decision is table-driven.
        return _table([
            _entry(5e-3, shape=self.SHAPE),
            _entry(1e-3, shape=self.SHAPE, method="thomas"),
        ])

    def test_exact_hit_is_measured(self):
        result = plan(*self.SHAPE, table=self._measured_table(),
                      calibration=None)
        assert result.method == "thomas"
        assert result.provenance == "measured"
        assert result.predicted_time == pytest.approx(1e-3)
        assert result.nranks == 1

    def test_nearby_shape_interpolates(self):
        n, m, p, r = self.SHAPE
        result = plan(2 * n, m, p, r, table=self._measured_table(),
                      calibration=None)
        assert result.provenance == "interpolated"

    def test_distant_shape_falls_back_to_model(self):
        n, m, p, r = self.SHAPE
        far_n = n * 2 ** (int(MAX_INTERP_DISTANCE) + 2)
        result = plan(far_n, m, p, r, table=self._measured_table(),
                      calibration=None)
        assert result.provenance == "model"

    def test_unmeasured_dtype_demoted_to_model(self):
        """A table measured only for float64 still informs the float32
        ranking via the nearest-itemsize dtype, but never with measured
        confidence (the dtype-fallback contract)."""
        table = self._measured_table()
        assert plan(*self.SHAPE, dtype=np.float64, table=table,
                    calibration=None).provenance == "measured"
        result = plan(*self.SHAPE, dtype=np.float32, table=table,
                      calibration=None)
        assert result.provenance == "model"

    def test_never_lose_guard_invariant(self):
        """A model-only winner must beat the reference's prediction by
        the margin; otherwise the plan is the reference, flagged
        clamped.  Checked against the model ranking recomputed here."""
        # Only the reference is measured: every other candidate runs on
        # scaled model predictions, so the guard decides the outcome.
        table = _table([_entry(1e-2, shape=self.SHAPE)])
        n, m, p, r = self.SHAPE
        preds = _model_ranking(n, m, p, r)
        best_method = min(preds, key=preds.get)
        result = plan(n, m, p, r, table=table, calibration=None)
        if result.clamped:
            assert result.method == "ard"
            assert result.blockops_backend == "batched"
            assert result.recurrence_mode == "auto"
        elif result.provenance == "model":
            # Unclamped model winner: must genuinely clear the margin.
            assert preds[result.method] <= preds["ard"] * (1 - MODEL_MARGIN)
            assert result.method == best_method


class TestAutoDispatch:
    def test_solve_auto_follows_installed_table(self):
        """``method="auto"`` resolves through the installed table and
        stamps the plan into ``SolveInfo``."""
        shape = (32, 4, 2, 4)
        table = _table([
            _entry(1e-6, shape=shape, method="thomas"),
            _entry(1.0, shape=shape),
        ])
        matrix, _ = helmholtz_block_system(32, 4)
        b = random_rhs(32, 4, nrhs=4, seed=0)
        set_default_table(table)
        try:
            x, info = solve(matrix, b, method="auto", nranks=2,
                            return_info=True)
        finally:
            set_default_table(None)
        assert info.method == "thomas"
        assert info.plan is not None
        assert info.plan.method == "thomas"
        assert info.plan.provenance == "measured"
        assert info.plan.nranks == info.nranks == 1
        reference = solve(matrix, b, method="thomas")
        np.testing.assert_allclose(x, reference, rtol=1e-10)

    def test_quick_tune_measures_every_anchor(self):
        """The quick sweep still measures one anchor per portfolio
        method (cross-family ranking is the model's blind spot), and a
        plan against the fresh table is measured-grade."""
        shape = (16, 4, 2, 2)
        table = tune_machine(quick=True, shapes=[shape])
        assert table.quick
        measured = {e.method for e in table.entries
                    if e.provenance == "measured"}
        assert measured == set(PLAN_METHODS)
        result = plan(*shape, table=table, calibration=None)
        assert result.provenance == "measured"


class TestPortfolioDrift:
    """OP_TABLE-style conformance: the method lists cannot drift apart."""

    def test_plan_methods_partition_solve_methods(self):
        assert set(PLAN_METHODS) == (
            set(SOLVE_METHODS) - {"auto"} - DIRECT_METHODS
        ), ("every iterative solve() method must be plannable (or added "
            "to DIRECT_METHODS here with a cost model waiver)")

    def test_plan_methods_are_predictable(self):
        assert set(PLAN_METHODS) <= set(PREDICTABLE_METHODS), (
            "the planner ranks by predict_time; teach the predictor "
            "about new portfolio methods first"
        )

    def test_predictable_base_methods_are_solvable(self):
        base = {meth for meth in PREDICTABLE_METHODS if "_" not in meth}
        assert base <= set(SOLVE_METHODS)

    def test_auto_is_exposed(self):
        assert "auto" in SOLVE_METHODS
        assert "auto" in FACTOR_METHODS
        assert set(FACTOR_METHODS) - {"auto"} <= set(SOLVE_METHODS)


class TestTunableThresholds:
    def test_config_override_and_restore(self):
        before = get_config().vector_solve_max_work
        with config_context(vector_solve_max_work=7):
            assert get_config().vector_solve_max_work == 7
        assert get_config().vector_solve_max_work == before

    @pytest.mark.parametrize("value", [0, -3, True, 2.5])
    def test_rejects_non_positive_ints(self, value):
        for name in TUNABLE_THRESHOLDS:
            with pytest.raises(ConfigError):
                with config_context(**{name: value}):
                    pass

    def test_apply_tuning_installs_thresholds(self):
        thresholds = dict(TUNABLE_THRESHOLDS, vector_solve_max_work=123)
        table = _table([_entry(0.5)], thresholds=thresholds)
        try:
            applied = apply_tuning(table)
            assert applied["vector_solve_max_work"] == 123
            assert get_config().vector_solve_max_work == 123
        finally:
            set_config(**TUNABLE_THRESHOLDS)

    def test_plan_is_frozen(self):
        result = plan(64, 8, 4, 8, table=None, calibration=None)
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.method = "rd"
