"""Tests for iterative refinement across solvers.

One refinement round squares the ``eps * growth`` error factor, which
extends the recursive doubling solvers' machine-precision domain to
growth ~ 1/sqrt(eps) ~ 1e8 (see repro.core.refine).
"""

import numpy as np
import pytest

from repro import solve
from repro.core import (
    ARDFactorization,
    CyclicReductionFactorization,
    SpikeFactorization,
    ThomasFactorization,
)
from repro.core.diagnostics import diagnose
from repro.exceptions import ShapeError
from repro.linalg.reference import dense_solve
from repro.workloads import (
    helmholtz_block_system,
    poisson_block_system,
    random_rhs,
)


@pytest.fixture
def marginal_system():
    """A system with growth ~1e7: ARD alone loses ~9 digits; one
    refinement round recovers machine precision."""
    mat, _ = poisson_block_system(12, 4)
    growth = diagnose(mat, warn=False).growth
    assert 1e5 < growth < 1e12  # the interesting middle regime
    b = random_rhs(12, 4, nrhs=2, seed=0)
    return mat, b


class TestRefinementRecoversAccuracy:
    def test_ard_one_round(self, marginal_system):
        mat, b = marginal_system
        fact = ARDFactorization(mat, nranks=4)
        xref = dense_solve(mat, b)
        scale = np.max(np.abs(xref))
        err_plain = np.max(np.abs(fact.solve(b) - xref)) / scale
        err_refined = np.max(np.abs(fact.solve(b, refine=1) - xref)) / scale
        assert err_refined < 1e-13
        assert err_refined < err_plain / 1e3

    def test_solve_api_refine(self, marginal_system):
        mat, b = marginal_system
        x, info = solve(mat, b, method="ard", nranks=4, refine=1,
                        return_info=True)
        assert info.residual < 1e-13

    def test_rd_refine_accumulates_time(self, marginal_system):
        mat, b = marginal_system
        _, info0 = solve(mat, b, method="rd", nranks=2, return_info=True)
        x, info1 = solve(mat, b, method="rd", nranks=2, refine=1,
                         return_info=True)
        assert info1.residual < 1e-13
        # Honest accounting: refinement repeats the per-RHS passes.
        assert info1.virtual_time > 1.5 * info0.virtual_time

    @pytest.mark.parametrize("factory", [
        ThomasFactorization, CyclicReductionFactorization,
    ])
    def test_sequential_factorizations_accept_refine(self, factory,
                                                     marginal_system):
        mat, b = marginal_system
        x = factory(mat).solve(b, refine=1)
        assert mat.residual(x, b) < 1e-14

    def test_spike_refine(self, marginal_system):
        mat, b = marginal_system
        x = SpikeFactorization(mat, nranks=3).solve(b, refine=1)
        assert mat.residual(x, b) < 1e-14

    @pytest.mark.parametrize("method", ["dense", "banded", "sparse"])
    def test_reference_methods_accept_refine(self, method, marginal_system):
        mat, b = marginal_system
        x = solve(mat, b, method=method, refine=1)
        assert mat.residual(x, b) < 1e-14


class TestRefinementSemantics:
    def test_zero_rounds_identical(self):
        mat, _ = helmholtz_block_system(10, 3)
        b = random_rhs(10, 3, nrhs=1, seed=1)
        fact = ARDFactorization(mat, nranks=2)
        np.testing.assert_array_equal(fact.solve(b), fact.solve(b, refine=0))

    def test_refine_idempotent_at_machine_precision(self):
        mat, _ = helmholtz_block_system(10, 3)
        b = random_rhs(10, 3, nrhs=1, seed=2)
        fact = ARDFactorization(mat, nranks=2)
        x1 = fact.solve(b, refine=1)
        x3 = fact.solve(b, refine=3)
        np.testing.assert_allclose(x1, x3, rtol=1e-12, atol=1e-14)

    def test_negative_refine_rejected(self):
        mat, _ = helmholtz_block_system(6, 2)
        b = random_rhs(6, 2, nrhs=1, seed=3)
        fact = ARDFactorization(mat, nranks=2)
        with pytest.raises(ShapeError):
            fact.solve(b, refine=-1)
        with pytest.raises(ShapeError):
            solve(mat, b, refine=-2)

    def test_layout_preserved_with_refine(self):
        # Dominant system: Thomas-factorable for sure.
        mat, _ = poisson_block_system(6, 2)
        flat = random_rhs(6, 2, 1, seed=4).reshape(12)
        fact = ThomasFactorization(mat)
        assert fact.solve(flat, refine=2).shape == (12,)

    def test_multiple_rounds_extend_domain(self):
        """With eps*growth < 1 refinement converges even when one round
        is not enough (growth ~1e14 here)."""
        mat, _ = poisson_block_system(24, 4)
        b = random_rhs(24, 4, nrhs=1, seed=5)
        fact = ARDFactorization(mat, nranks=2)
        plain = mat.residual(fact.solve(b), b)
        refined = mat.residual(fact.solve(b, refine=3), b)
        assert plain > 1e-8           # hopeless without refinement
        assert refined < 1e-11        # recovered by iteration

    def test_cannot_fix_extreme_growth(self):
        """Beyond growth ~1/eps the first solve has no correct digits
        (or the closing factorization is numerically singular) and
        refinement cannot converge."""
        from repro.exceptions import SingularBlockError

        mat, _ = poisson_block_system(40, 4)  # growth >> 1/eps
        b = random_rhs(40, 4, nrhs=1, seed=6)
        try:
            fact = ARDFactorization(mat, nranks=2)
            x = fact.solve(b, refine=3)
            assert mat.residual(x, b) > 1e-8
        except SingularBlockError:
            pass  # the documented failure mode for overflowed closings
