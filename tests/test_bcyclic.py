"""Tests for the distributed block cyclic reduction solver."""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.core.bcyclic import bcyclic_solve, bcyclic_solve_spmd
from repro.exceptions import ShapeError
from repro.linalg.reference import dense_solve
from repro.perfmodel import PAPER_ERA_MODEL, predict_time
from repro.workloads import (
    helmholtz_block_system,
    poisson_block_system,
    random_block_dd_system,
    random_rhs,
)


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 13, 16, 31])
    def test_matches_dense_all_lengths(self, n):
        mat, _ = random_block_dd_system(n, 3, seed=n)
        b = random_rhs(n, 3, nrhs=2, seed=0)
        x, _ = bcyclic_solve(mat, b)
        np.testing.assert_allclose(x, dense_solve(mat, b), rtol=1e-8, atol=1e-10)

    def test_poisson_large(self):
        mat, _ = poisson_block_system(48, 4)
        b = random_rhs(48, 4, nrhs=3, seed=1)
        x, _ = bcyclic_solve(mat, b)
        assert mat.residual(x, b) < 1e-11

    def test_oscillatory_moderate(self):
        mat, _ = helmholtz_block_system(32, 3)
        b = random_rhs(32, 3, nrhs=1, seed=2)
        x, _ = bcyclic_solve(mat, b)
        assert mat.residual(x, b) < 1e-10

    def test_matches_sequential_cyclic(self):
        from repro.core.cyclic_reduction import cyclic_reduction_solve

        mat, _ = random_block_dd_system(17, 2, seed=3)
        b = random_rhs(17, 2, nrhs=2, seed=4)
        x_dist, _ = bcyclic_solve(mat, b)
        x_seq = cyclic_reduction_solve(mat, b)
        np.testing.assert_allclose(x_dist, x_seq, rtol=1e-9, atol=1e-11)

    def test_rhs_layout_roundtrip(self):
        mat, _ = random_block_dd_system(8, 2, seed=5)
        flat = random_rhs(8, 2, 1, seed=6).reshape(16)
        x, _ = bcyclic_solve(mat, flat)
        assert x.shape == (16,)


class TestSpmdContract:
    def test_requires_enough_ranks(self):
        def program(comm):
            return bcyclic_solve_spmd(comm, None, None, nrows=8)

        with pytest.raises(ShapeError, match="one rank per row"):
            run_spmd(program, 2)

    def test_idle_ranks_return_none(self):
        mat, _ = random_block_dd_system(3, 2, seed=7)
        b = random_rhs(3, 2, nrhs=1, seed=8)
        zero = np.zeros((2, 2))

        def program(comm):
            i = comm.rank
            if i >= 3:
                return bcyclic_solve_spmd(comm, None, None, 3)
            low = mat.lower[i - 1] if i > 0 else zero
            up = mat.upper[i] if i < 2 else zero
            return bcyclic_solve_spmd(comm, (low, mat.diag[i], up), b[i], 3)

        res = run_spmd(program, 5)
        assert res.values[3] is None and res.values[4] is None
        x = np.stack(res.values[:3])
        assert mat.residual(x, b) < 1e-11

    def test_missing_data_rejected(self):
        def program(comm):
            return bcyclic_solve_spmd(comm, None, None, nrows=2)

        with pytest.raises(ShapeError, match="no data"):
            run_spmd(program, 2)

    def test_bad_rhs_shape(self):
        mat, _ = random_block_dd_system(2, 2, seed=9)
        zero = np.zeros((2, 2))

        def program(comm):
            i = comm.rank
            low = mat.lower[i - 1] if i > 0 else zero
            up = mat.upper[i] if i < 1 else zero
            return bcyclic_solve_spmd(comm, (low, mat.diag[i], up),
                                      np.zeros(5), 2)

        with pytest.raises(ShapeError):
            run_spmd(program, 2)


class TestCostShape:
    def test_log_depth_virtual_time(self):
        """Doubling N (= P) adds ~one level: virtual time grows ~log N,
        far slower than the sequential solve's linear growth."""
        times = {}
        for n in (8, 16, 32, 64):
            mat, _ = random_block_dd_system(n, 2, seed=n)
            b = random_rhs(n, 2, nrhs=1, seed=0)
            _, res = bcyclic_solve(mat, b, cost_model=PAPER_ERA_MODEL)
            times[n] = res.virtual_time
        # 8x more rows costs < 3x more modelled time (log depth).
        assert times[64] / times[8] < 3.0

    def test_model_brackets_measured(self):
        """The bcr_parallel cost model used by abl-A3 agrees with the
        measured implementation within a small constant at P = N."""
        n, m = 32, 4
        mat, _ = random_block_dd_system(n, m, seed=11)
        b = random_rhs(n, m, nrhs=4, seed=12)
        _, res = bcyclic_solve(mat, b, cost_model=PAPER_ERA_MODEL)
        predicted = predict_time("bcr_parallel", n=n, m=m, p=n, r=4,
                                 cost_model=PAPER_ERA_MODEL)
        assert 0.2 < res.virtual_time / predicted < 5.0
