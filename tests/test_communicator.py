"""Tests for point-to-point messaging and communicator management."""

import pytest

from repro.comm import ANY_SOURCE, ANY_TAG, Request, Status, run_spmd
from repro.exceptions import RankError, TagError


class TestPointToPoint:
    def test_send_recv(self):
        def program(comm):
            if comm.rank == 0:
                comm.send({"v": 42}, 1, tag=7)
                return None
            return comm.recv(source=0, tag=7)

        res = run_spmd(program, 2)
        assert res.values[1] == {"v": 42}

    def test_fifo_per_source(self):
        def program(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, 1, tag=3)
                return None
            return [comm.recv(source=0, tag=3) for _ in range(5)]

        res = run_spmd(program, 2)
        assert res.values[1] == [0, 1, 2, 3, 4]

    def test_tag_selective_matching(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                return None
            first = comm.recv(source=0, tag=2)
            second = comm.recv(source=0, tag=1)
            return (first, second)

        res = run_spmd(program, 2)
        assert res.values[1] == ("b", "a")

    def test_any_source(self):
        def program(comm):
            if comm.rank == 2:
                got = {comm.recv(source=ANY_SOURCE, tag=4) for _ in range(2)}
                return got
            comm.send(comm.rank, 2, tag=4)
            return None

        res = run_spmd(program, 3)
        assert res.values[2] == {0, 1}

    def test_any_tag(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("x", 1, tag=9)
                return None
            return comm.recv(source=0, tag=ANY_TAG)

        assert run_spmd(program, 2).values[1] == "x"

    def test_status_filled(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(b"abcd", 1, tag=6)
                return None
            status = Status()
            comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
            return (status.source, status.tag, status.nbytes)

        assert run_spmd(program, 2).values[1] == (0, 6, 4)

    def test_self_send(self):
        def program(comm):
            comm.send("self", comm.rank, tag=1)
            return comm.recv(source=comm.rank, tag=1)

        assert run_spmd(program, 1).values[0] == "self"

    def test_sendrecv(self):
        def program(comm):
            partner = 1 - comm.rank
            return comm.sendrecv(comm.rank, partner, 5, source=partner, recvtag=5)

        res = run_spmd(program, 2)
        assert res.values == [1, 0]


class TestNonblocking:
    def test_isend_completes_immediately(self):
        def program(comm):
            if comm.rank == 0:
                req = comm.isend("x", 1)
                done, _ = req.test()
                assert done
                req.wait()
                return None
            return comm.recv(source=0)

        assert run_spmd(program, 2).values[1] == "x"

    def test_irecv_wait(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("payload", 1)
                return None
            req = comm.irecv(source=0)
            done, _ = req.test()
            assert not done
            return req.wait()

        assert run_spmd(program, 2).values[1] == "payload"

    def test_waitall(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=1)
                comm.send(2, 1, tag=2)
                return None
            reqs = [comm.irecv(source=0, tag=1), comm.irecv(source=0, tag=2)]
            return Request.waitall(reqs)

        assert run_spmd(program, 2).values[1] == [1, 2]

    def test_wait_idempotent(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("v", 1)
                return None
            req = comm.irecv(source=0)
            return (req.wait(), req.wait())

        assert run_spmd(program, 2).values[1] == ("v", "v")


class TestValidation:
    def test_bad_dest(self):
        def program(comm):
            comm.send("x", 5)

        with pytest.raises(RankError):
            run_spmd(program, 2)

    def test_bad_source(self):
        def program(comm):
            comm.recv(source=-3)

        with pytest.raises(RankError):
            run_spmd(program, 2)

    def test_bad_tag(self):
        def program(comm):
            comm.send("x", 0, tag=-1)

        with pytest.raises(TagError):
            run_spmd(program, 1)

    def test_huge_tag_rejected(self):
        def program(comm):
            comm.send("x", 0, tag=1 << 30)

        with pytest.raises(TagError):
            run_spmd(program, 1)


class TestCommManagement:
    def test_split_groups(self):
        def program(comm):
            sub = comm.split(color=comm.rank % 2)
            return (sub.size, sub.rank, sub.allreduce(comm.rank))

        res = run_spmd(program, 6)
        # Even ranks {0,2,4}: sum 6; odd ranks {1,3,5}: sum 9.
        assert res.values[0] == (3, 0, 6)
        assert res.values[1] == (3, 0, 9)
        assert res.values[4] == (3, 2, 6)

    def test_split_none_color(self):
        def program(comm):
            sub = comm.split(color=None if comm.rank == 0 else 1)
            if sub is None:
                return "excluded"
            return sub.size

        res = run_spmd(program, 3)
        assert res.values == ["excluded", 2, 2]

    def test_split_key_ordering(self):
        def program(comm):
            # Reverse ordering via descending keys.
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        res = run_spmd(program, 3)
        assert res.values == [2, 1, 0]

    def test_split_isolated_matching(self):
        def program(comm):
            sub = comm.split(color=comm.rank % 2)
            # Messages in sub must not leak into the parent communicator.
            if sub.rank == 0 and sub.size > 1:
                sub.send("subworld", 1, tag=3)
            elif sub.rank == 1:
                return sub.recv(source=0, tag=3)
            return None

        res = run_spmd(program, 4)
        assert res.values[2] == "subworld"
        assert res.values[3] == "subworld"

    def test_dup_isolated(self):
        def program(comm):
            dup = comm.dup()
            if comm.rank == 0:
                dup.send("via-dup", 1, tag=2)
                comm.send("via-world", 1, tag=2)
                return None
            world_msg = comm.recv(source=0, tag=2)
            dup_msg = dup.recv(source=0, tag=2)
            return (world_msg, dup_msg)

        res = run_spmd(program, 2)
        assert res.values[1] == ("via-world", "via-dup")

    def test_properties(self):
        def program(comm):
            return (comm.rank, comm.size)

        res = run_spmd(program, 3)
        assert res.values == [(0, 3), (1, 3), (2, 3)]
