"""Tests for repro.util.seeding and repro.util.tables."""

import numpy as np
import pytest

from repro.util.seeding import rng_from_seed, spawn_rngs
from repro.util.tables import format_value, render_csv, render_table


class TestSeeding:
    def test_int_seed_deterministic(self):
        a = rng_from_seed(42).standard_normal(5)
        b = rng_from_seed(42).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert rng_from_seed(g) is g

    def test_seedsequence(self):
        seq = np.random.SeedSequence(7)
        g = rng_from_seed(seq)
        assert isinstance(g, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(rng_from_seed(None), np.random.Generator)

    def test_spawn_count(self):
        rngs = spawn_rngs(0, 4)
        assert len(rngs) == 4

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawned_streams_differ(self):
        a, b = spawn_rngs(123, 2)
        assert not np.allclose(a.standard_normal(8), b.standard_normal(8))

    def test_spawn_deterministic(self):
        x = [g.standard_normal(3) for g in spawn_rngs(9, 3)]
        y = [g.standard_normal(3) for g in spawn_rngs(9, 3)]
        for a, b in zip(x, y):
            np.testing.assert_array_equal(a, b)

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(5)
        rngs = spawn_rngs(parent, 2)
        assert len(rngs) == 2


class TestTables:
    def test_format_value(self):
        assert format_value(1) == "1"
        assert format_value(True) == "True"
        assert format_value(1.23456789) == "1.235"
        assert format_value("x") == "x"

    def test_render_basic(self):
        text = render_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert "---" in lines[1]
        assert lines[2].startswith("1")

    def test_render_title(self):
        text = render_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_render_ragged_rejected(self):
        with pytest.raises(ValueError, match="row 0"):
            render_table(["a", "b"], [[1]])

    def test_render_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_csv(self):
        text = render_csv(["a", "b"], [[1, 2.0]])
        assert text.splitlines() == ["a,b", "1,2"]

    def test_csv_rejects_commas(self):
        with pytest.raises(ValueError):
            render_csv(["a"], [["x,y"]])
