"""Unit tests for repro.comm.matching in isolation.

The mailbox matching, wait-for-graph and deadlock-report helpers were
extracted from the runtime so both execution backends (and now the
static protocol analyzer) share one matching contract; until now they
were only exercised indirectly through backend conformance tests.
"""

from __future__ import annotations

import dataclasses

from repro.comm.matching import (
    WaitInfo,
    deadlock_report,
    find_wait_cycle,
    match_in,
    peek_in,
)


@dataclasses.dataclass
class Msg:
    comm_key: tuple
    source: int
    tag: int
    body: str = ""


WORLD = ("world",)
SUB = ("world", ("split", 0, 1))


def mailbox():
    return [
        Msg(WORLD, source=0, tag=1, body="a"),
        Msg(WORLD, source=1, tag=1, body="b"),
        Msg(WORLD, source=0, tag=2, body="c"),
        Msg(SUB, source=0, tag=1, body="d"),
    ]


class TestMatchIn:
    def test_exact_triple_pops_first_match(self):
        pending = mailbox()
        got = match_in(pending, WORLD, source=0, tag=2)
        assert got.body == "c"
        assert len(pending) == 3
        assert all(m.body != "c" for m in pending)

    def test_arrival_order_wins_among_candidates(self):
        pending = mailbox()
        got = match_in(pending, WORLD, source=0, tag=1)
        assert got.body == "a"  # not "c": tag filtered; not "d": comm

    def test_source_wildcard(self):
        pending = mailbox()
        got = match_in(pending, WORLD, source=-1, tag=1)
        assert got.body == "a"
        got = match_in(pending, WORLD, source=-1, tag=1)
        assert got.body == "b"

    def test_tag_wildcard(self):
        pending = mailbox()
        got = match_in(pending, WORLD, source=1, tag=-1)
        assert got.body == "b"

    def test_double_wildcard_takes_first_in_comm(self):
        pending = mailbox()
        got = match_in(pending, SUB, source=-1, tag=-1)
        assert got.body == "d"

    def test_communicator_isolation(self):
        pending = mailbox()
        assert match_in(pending, ("other",), source=-1, tag=-1) is None
        assert len(pending) == 4  # nothing popped

    def test_no_match_returns_none_and_keeps_mailbox(self):
        pending = mailbox()
        assert match_in(pending, WORLD, source=3, tag=1) is None
        assert match_in(pending, WORLD, source=1, tag=9) is None
        assert len(pending) == 4


class TestPeekIn:
    def test_peek_is_nondestructive(self):
        pending = mailbox()
        assert peek_in(pending, WORLD, source=0, tag=2)
        assert len(pending) == 4

    def test_peek_respects_filters(self):
        pending = mailbox()
        assert not peek_in(pending, WORLD, source=2, tag=-1)
        assert not peek_in(pending, SUB, source=0, tag=9)
        assert peek_in(pending, SUB, source=-1, tag=-1)

    def test_peek_empty(self):
        assert not peek_in([], WORLD, source=-1, tag=-1)


class TestWaitInfo:
    def test_describe_concrete(self):
        w = WaitInfo(WORLD, source=2, tag=7, source_world=5, op=None)
        text = w.describe(3)
        assert "rank 3" in text
        assert "rank 5" in text  # world rank preferred over local
        assert "tag 7" in text

    def test_describe_wildcards_and_collective(self):
        w = WaitInfo(WORLD, source=-1, tag=-1, source_world=None,
                     op="allreduce")
        text = w.describe(0)
        assert "any rank" in text
        assert "any tag" in text
        assert "allreduce" in text

    def test_tuple_round_trip(self):
        w = WaitInfo(SUB, source=1, tag=4, source_world=3, op="gather")
        clone = WaitInfo.from_tuple(w.to_tuple())
        assert clone.comm_key == SUB
        assert clone.source == 1
        assert clone.tag == 4
        assert clone.source_world == 3
        assert clone.op == "gather"


def wait_on(target: int | None) -> WaitInfo:
    return WaitInfo(WORLD, source=target if target is not None else -1,
                    tag=0, source_world=target, op=None)


class TestFindWaitCycle:
    def test_no_cycle_in_chain(self):
        waiting = {0: wait_on(1), 1: wait_on(2)}  # 2 is not blocked
        assert find_wait_cycle(waiting) is None

    def test_self_cycle(self):
        assert find_wait_cycle({3: wait_on(3)}) == [3]

    def test_two_cycle(self):
        cycle = find_wait_cycle({0: wait_on(1), 1: wait_on(0)})
        assert cycle is not None
        assert set(cycle) == {0, 1}

    def test_chain_into_cycle_reports_only_the_cycle(self):
        waiting = {0: wait_on(1), 1: wait_on(2), 2: wait_on(1)}
        cycle = find_wait_cycle(waiting)
        assert set(cycle) == {1, 2}

    def test_wildcard_waiters_are_not_graph_nodes(self):
        waiting = {0: wait_on(None), 1: wait_on(0)}
        assert find_wait_cycle(waiting) is None

    def test_empty(self):
        assert find_wait_cycle({}) is None


class TestDeadlockReport:
    def test_report_lists_every_blocked_rank_and_cycle(self):
        waiting = {0: wait_on(1), 1: wait_on(0)}
        text = deadlock_report(waiting, n_blocked=2,
                               unmatched_lines=["message rank 0 -> rank 1 "
                                                "tag 9"])
        assert "2 unfinished rank(s)" in text
        assert "wait-for cycle" in text
        assert "rank 0" in text and "rank 1" in text
        assert "unmatched message rank 0 -> rank 1 tag 9" in text

    def test_custom_headline(self):
        text = deadlock_report({0: wait_on(None)}, n_blocked=1,
                               headline="all stuck")
        assert text.splitlines()[0] == "all stuck"
        assert "any rank" in text
