"""Tests for repro.linalg.analysis (sparse import, condition estimate)."""

import numpy as np
import pytest
import scipy.sparse

from repro.core import ARDFactorization, ThomasFactorization
from repro.exceptions import ShapeError
from repro.linalg.analysis import estimate_condition, from_scipy_sparse, onenorm
from repro.workloads import (
    helmholtz_block_system,
    poisson_block_system,
    random_block_dd_system,
    random_rhs,
)


class TestFromScipySparse:
    def test_roundtrip(self):
        mat, _ = random_block_dd_system(6, 3, seed=0)
        sparse = scipy.sparse.csr_matrix(mat.to_dense())
        back = from_scipy_sparse(sparse, 3)
        assert back.allclose(mat)

    def test_coo_with_duplicates_summed(self):
        rows = [0, 0, 1]
        cols = [0, 0, 1]
        vals = [1.0, 2.0, 5.0]
        a = scipy.sparse.coo_matrix((vals, (rows, cols)), shape=(4, 4))
        mat = from_scipy_sparse(a, 2)
        assert mat.diag[0][0, 0] == 3.0
        assert mat.diag[0][1, 1] == 5.0

    def test_complex_preserved(self):
        a = scipy.sparse.coo_matrix(([1 + 2j], ([0], [0])), shape=(2, 2))
        mat = from_scipy_sparse(a, 1)
        assert mat.dtype.kind == "c"

    def test_off_band_rejected(self):
        a = scipy.sparse.coo_matrix(([1.0], ([0], [5])), shape=(6, 6))
        with pytest.raises(ShapeError, match="outside"):
            from_scipy_sparse(a, 2)

    def test_bad_order(self):
        a = scipy.sparse.eye(5)
        with pytest.raises(ShapeError):
            from_scipy_sparse(a, 2)

    def test_dense_input_rejected(self):
        with pytest.raises(ShapeError, match="scipy.sparse"):
            from_scipy_sparse(np.eye(4), 2)

    def test_solve_after_import(self):
        mat, _ = poisson_block_system(8, 3)
        imported = from_scipy_sparse(mat.to_sparse(), 3)
        b = random_rhs(8, 3, nrhs=2, seed=1)
        x = ThomasFactorization(imported).solve(b)
        assert mat.residual(x, b) < 1e-11


class TestOneNorm:
    def test_matches_dense(self):
        mat, _ = random_block_dd_system(7, 3, seed=2)
        dense = np.abs(mat.to_dense()).sum(axis=0).max()
        assert onenorm(mat) == pytest.approx(dense)

    def test_single_block(self):
        mat, _ = random_block_dd_system(1, 4, seed=3)
        dense = np.abs(mat.to_dense()).sum(axis=0).max()
        assert onenorm(mat) == pytest.approx(dense)


class TestConditionEstimate:
    def test_within_factor_of_truth(self):
        mat, _ = helmholtz_block_system(24, 3)
        truth = np.linalg.cond(mat.to_dense(), 1)
        est = estimate_condition(mat, ThomasFactorization(mat))
        assert 0.1 * truth <= est <= 1.5 * truth

    def test_lower_bound_property(self):
        """Hager's estimate never exceeds the true condition number
        (up to roundoff)."""
        for seed in range(3):
            mat, _ = random_block_dd_system(10, 2, seed=seed)
            truth = np.linalg.cond(mat.to_dense(), 1)
            est = estimate_condition(mat, ThomasFactorization(mat))
            assert est <= truth * 1.01

    def test_works_with_distributed_factorization(self):
        mat, _ = helmholtz_block_system(16, 3)
        est = estimate_condition(mat, ARDFactorization(mat, nranks=4))
        assert est > 1.0

    def test_identity_has_condition_one(self):
        from repro.linalg.blocktridiag import BlockTridiagonalMatrix

        eye = BlockTridiagonalMatrix.block_identity(5, 3)
        est = estimate_condition(eye, ThomasFactorization(eye))
        assert est == pytest.approx(1.0)

    def test_iters_validation(self):
        mat, _ = poisson_block_system(4, 2)
        with pytest.raises(ShapeError):
            estimate_condition(mat, ThomasFactorization(mat), iters=0)
