"""Tests for matrix/RHS distribution across ranks."""

import numpy as np
import pytest

from repro.core.distribute import (
    LocalChunk,
    distribute_matrix,
    distribute_rhs,
    gather_solution,
)
from repro.exceptions import ShapeError
from repro.workloads import helmholtz_block_system, random_rhs


class TestLocalChunk:
    def test_properties(self):
        mat, _ = helmholtz_block_system(10, 3)
        chunks = distribute_matrix(mat, 3)
        c = chunks[1]
        assert c.nrows == c.hi - c.lo
        assert c.block_size == 3
        assert c.nblocks == 10
        assert not c.owns_closing_row
        assert chunks[2].owns_closing_row

    def test_ntransfer_interior_vs_closing(self):
        mat, _ = helmholtz_block_system(10, 3)
        chunks = distribute_matrix(mat, 3)
        assert chunks[0].ntransfer == chunks[0].nrows
        assert chunks[2].ntransfer == chunks[2].nrows - 1

    def test_validation_range(self):
        with pytest.raises(ShapeError):
            LocalChunk(
                nblocks=4, lo=3, hi=2,
                diag=np.zeros((0, 2, 2)), sub=np.zeros((0, 2, 2)),
                sup=np.zeros((0, 2, 2)),
            )

    def test_validation_shapes(self):
        with pytest.raises(ShapeError):
            LocalChunk(
                nblocks=4, lo=0, hi=2,
                diag=np.zeros((2, 2, 2)), sub=np.zeros((1, 2, 2)),
                sup=np.zeros((2, 2, 2)),
            )


class TestDistributeMatrix:
    def test_blocks_match_source(self):
        mat, _ = helmholtz_block_system(10, 3)
        chunks = distribute_matrix(mat, 3)
        for chunk in chunks:
            for j in range(chunk.nrows):
                i = chunk.lo + j
                np.testing.assert_array_equal(chunk.diag[j], mat.diag[i])
                if i > 0:
                    np.testing.assert_array_equal(chunk.sub[j], mat.lower[i - 1])
                else:
                    np.testing.assert_array_equal(chunk.sub[j], 0.0)
                if i < 9:
                    np.testing.assert_array_equal(chunk.sup[j], mat.upper[i])
                else:
                    np.testing.assert_array_equal(chunk.sup[j], 0.0)

    def test_chunks_cover_rows(self):
        mat, _ = helmholtz_block_system(11, 2)
        for p in (1, 2, 3, 5, 11, 16):
            chunks = distribute_matrix(mat, p)
            rows = [i for c in chunks for i in range(c.lo, c.hi)]
            assert rows == list(range(11))

    def test_empty_ranks_when_p_exceeds_n(self):
        mat, _ = helmholtz_block_system(3, 2)
        chunks = distribute_matrix(mat, 5)
        assert [c.nrows for c in chunks] == [1, 1, 1, 0, 0]
        assert chunks[2].owns_closing_row
        assert not chunks[4].owns_closing_row

    def test_chunks_are_copies(self):
        mat, _ = helmholtz_block_system(4, 2)
        chunks = distribute_matrix(mat, 2)
        chunks[0].diag[0, 0, 0] = 99.0
        assert mat.diag[0, 0, 0] != 99.0


class TestDistributeRhs:
    def test_round_trip(self):
        b = random_rhs(10, 3, nrhs=2, seed=0)
        parts = distribute_rhs(b, 3)
        np.testing.assert_array_equal(gather_solution(parts), b)

    def test_rejects_non_3d(self):
        with pytest.raises(ShapeError):
            distribute_rhs(np.zeros((4, 3)), 2)

    def test_empty_chunks_allowed_in_gather(self):
        b = random_rhs(2, 3, nrhs=1, seed=0)
        parts = distribute_rhs(b, 4)
        assert parts[3].shape == (0, 3, 1)
        np.testing.assert_array_equal(gather_solution(parts), b)

    def test_gather_nothing_rejected(self):
        with pytest.raises(ShapeError):
            gather_solution([np.zeros((0, 2, 1))])
