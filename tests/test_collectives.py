"""Tests for collective operations across rank counts (incl. non-powers
of two) and operator classes (commutative and not)."""

import numpy as np
import pytest

from repro.comm import MAX, MIN, SUM, run_spmd
from repro.exceptions import CommError

SIZES = [1, 2, 3, 4, 5, 7, 8]


def concat(a, b):
    """A non-commutative associative operation: string concatenation."""
    return a + b


@pytest.mark.parametrize("p", SIZES)
class TestBroadcastGather:
    def test_bcast_from_every_root(self, p):
        def program(comm):
            out = []
            for root in range(comm.size):
                value = f"msg{root}" if comm.rank == root else None
                out.append(comm.bcast(value, root=root))
            return out

        res = run_spmd(program, p)
        for values in res.values:
            assert values == [f"msg{r}" for r in range(p)]

    def test_gather_rank_order(self, p):
        def program(comm):
            return comm.gather(comm.rank * 2, root=0)

        res = run_spmd(program, p)
        assert res.values[0] == [2 * r for r in range(p)]
        for other in res.values[1:]:
            assert other is None

    def test_gather_nonzero_root(self, p):
        root = p - 1

        def program(comm):
            return comm.gather(chr(65 + comm.rank), root=root)

        res = run_spmd(program, p)
        assert res.values[root] == [chr(65 + r) for r in range(p)]

    def test_allgather(self, p):
        def program(comm):
            return comm.allgather(comm.rank**2)

        res = run_spmd(program, p)
        expected = [r**2 for r in range(p)]
        assert all(v == expected for v in res.values)

    def test_scatter(self, p):
        def program(comm):
            items = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(items, root=0)

        res = run_spmd(program, p)
        assert res.values == [f"item{r}" for r in range(p)]

    def test_alltoall(self, p):
        def program(comm):
            return comm.alltoall([comm.rank * 100 + d for d in range(comm.size)])

        res = run_spmd(program, p)
        for r, got in enumerate(res.values):
            assert got == [src * 100 + r for src in range(p)]


@pytest.mark.parametrize("p", SIZES)
class TestReductions:
    def test_allreduce_sum(self, p):
        res = run_spmd(lambda comm: comm.allreduce(comm.rank + 1), p)
        expected = p * (p + 1) // 2
        assert all(v == expected for v in res.values)

    def test_allreduce_arrays(self, p):
        def program(comm):
            return comm.allreduce(np.full(3, float(comm.rank)), SUM)

        res = run_spmd(program, p)
        np.testing.assert_allclose(res.values[0], np.full(3, p * (p - 1) / 2))

    def test_reduce_max_min(self, p):
        def program(comm):
            hi = comm.reduce(comm.rank, MAX, root=0)
            lo = comm.reduce(-comm.rank, MIN, root=0)
            return (hi, lo)

        res = run_spmd(program, p)
        assert res.values[0] == (p - 1, -(p - 1))

    def test_allreduce_noncommutative_rank_order(self, p):
        def program(comm):
            return comm.allreduce(chr(97 + comm.rank), concat)

        res = run_spmd(program, p)
        expected = "".join(chr(97 + r) for r in range(p))
        assert all(v == expected for v in res.values)

    def test_scan_inclusive(self, p):
        def program(comm):
            return comm.scan(chr(97 + comm.rank), concat)

        res = run_spmd(program, p)
        for r, got in enumerate(res.values):
            assert got == "".join(chr(97 + i) for i in range(r + 1))

    def test_exscan(self, p):
        def program(comm):
            return comm.exscan(chr(97 + comm.rank), concat)

        res = run_spmd(program, p)
        assert res.values[0] is None
        for r in range(1, p):
            assert res.values[r] == "".join(chr(97 + i) for i in range(r))

    def test_barrier_completes(self, p):
        def program(comm):
            for _ in range(3):
                comm.barrier()
            return True

        assert all(run_spmd(program, p).values)


class TestCollectiveErrors:
    def test_scatter_requires_items_at_root(self):
        def program(comm):
            return comm.scatter(None, root=0)

        with pytest.raises(CommError):
            run_spmd(program, 2)

    def test_scatter_wrong_length(self):
        def program(comm):
            items = [1] if comm.rank == 0 else None
            return comm.scatter(items, root=0)

        with pytest.raises(CommError):
            run_spmd(program, 2)

    def test_alltoall_wrong_length(self):
        def program(comm):
            return comm.alltoall([1])

        with pytest.raises(CommError):
            run_spmd(program, 3)


class TestConsecutiveCollectives:
    def test_no_crosstalk(self):
        """Back-to-back collectives with eager sends must not mix."""

        def program(comm):
            a = comm.allreduce(comm.rank)
            b = comm.allreduce(comm.rank * 10)
            c = comm.scan(comm.rank, SUM)
            d = comm.allgather(comm.rank)
            return (a, b, c, d)

        res = run_spmd(program, 5)
        total = sum(range(5))
        for r, (a, b, c, d) in enumerate(res.values):
            assert a == total
            assert b == total * 10
            assert c == sum(range(r + 1))
            assert d == list(range(5))

    def test_interleaved_p2p_and_collectives(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("direct", 1, tag=11)
            total = comm.allreduce(1)
            direct = comm.recv(source=0, tag=11) if comm.rank == 1 else None
            return (total, direct)

        res = run_spmd(program, 3)
        assert res.values[1] == (3, "direct")
