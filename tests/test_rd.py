"""Tests for classical recursive doubling (repro.core.rd)."""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.core.distribute import distribute_matrix, distribute_rhs, gather_solution
from repro.core.rd import rd_solve_spmd
from repro.exceptions import ShapeError
from repro.linalg.reference import dense_solve
from repro.workloads import helmholtz_block_system, random_rhs


def _rd_solve(matrix, b, nranks):
    chunks = distribute_matrix(matrix, nranks)
    d_chunks = distribute_rhs(b, nranks)
    result = run_spmd(
        rd_solve_spmd, nranks,
        rank_args=[(c, d) for c, d in zip(chunks, d_chunks)],
    )
    return gather_solution(list(result.values)), result


@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
class TestRdCorrectness:
    def test_matches_dense(self, p):
        mat, _ = helmholtz_block_system(17, 3)
        b = random_rhs(17, 3, nrhs=2, seed=0)
        x, _ = _rd_solve(mat, b, p)
        np.testing.assert_allclose(x, dense_solve(mat, b), rtol=1e-8, atol=1e-10)

    def test_single_block_system(self, p):
        mat, _ = helmholtz_block_system(1, 3)
        b = random_rhs(1, 3, nrhs=2, seed=1)
        x, _ = _rd_solve(mat, b, p)
        assert mat.residual(x, b) < 1e-11

    def test_more_ranks_than_rows(self, p):
        mat, _ = helmholtz_block_system(3, 2)
        b = random_rhs(3, 2, nrhs=1, seed=2)
        x, _ = _rd_solve(mat, b, p)
        assert mat.residual(x, b) < 1e-11


class TestRdCostStructure:
    def test_work_scales_with_rhs_count(self):
        """The defining baseline property: total flops grow ~linearly in R."""
        mat, _ = helmholtz_block_system(32, 4)
        _, res1 = _rd_solve(mat, random_rhs(32, 4, 1, seed=3), 4)
        _, res4 = _rd_solve(mat, random_rhs(32, 4, 4, seed=3), 4)
        ratio = res4.total_flops / res1.total_flops
        assert 3.5 < ratio < 4.5

    def test_lu_work_repeated_per_rhs(self):
        """RD refactors the superdiagonal blocks once per right-hand side."""
        mat, _ = helmholtz_block_system(16, 4)
        _, res = _rd_solve(mat, random_rhs(16, 4, 3, seed=4), 2)
        lu_flops = res.flops_by_kernel()["lu"]
        # 15 transfer LUs + 1 closing LU per pass, 3 passes.
        per_block = 2 * 4**3 // 3
        assert lu_flops == 3 * 16 * per_block

    def test_solution_shape(self):
        mat, _ = helmholtz_block_system(10, 3)
        b = random_rhs(10, 3, nrhs=5, seed=5)
        x, _ = _rd_solve(mat, b, 3)
        assert x.shape == (10, 3, 5)


class TestRdValidation:
    def test_bad_rhs_shape(self):
        mat, _ = helmholtz_block_system(6, 2)
        chunks = distribute_matrix(mat, 2)
        bad = [np.zeros((1, 2, 1)), np.zeros((3, 2, 1))]
        with pytest.raises(ShapeError):
            run_spmd(
                rd_solve_spmd, 2,
                rank_args=[(c, d) for c, d in zip(chunks, bad)],
            )

    def test_zero_rhs_rejected(self):
        mat, _ = helmholtz_block_system(6, 2)
        chunks = distribute_matrix(mat, 1)
        with pytest.raises(ShapeError):
            run_spmd(rd_solve_spmd, 1, rank_args=[(chunks[0], np.zeros((6, 2, 0)))])
