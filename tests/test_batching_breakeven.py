"""Tests for memory-bounded batched solves and the break-even model."""

import numpy as np
import pytest

from repro.core import ARDFactorization, ThomasFactorization
from repro.exceptions import ShapeError
from repro.perfmodel import PAPER_ERA_MODEL, ard_breakeven_r, predict_time
from repro.workloads import helmholtz_block_system, random_rhs


class TestMaxBatch:
    def test_results_identical_across_batch_sizes(self):
        mat, _ = helmholtz_block_system(16, 3)
        fact = ARDFactorization(mat, nranks=3)
        b = random_rhs(16, 3, nrhs=13, seed=0)
        full = fact.solve(b)
        for batch in (1, 4, 5, 13, 100):
            np.testing.assert_allclose(
                fact.solve(b, max_batch=batch), full, rtol=1e-12, atol=1e-14
            )

    def test_sequential_factorization_supports_it(self):
        mat, _ = helmholtz_block_system(10, 2)
        fact = ThomasFactorization(mat)
        b = random_rhs(10, 2, nrhs=7, seed=1)
        np.testing.assert_allclose(
            fact.solve(b, max_batch=2), fact.solve(b), atol=1e-14
        )

    def test_combines_with_refine(self):
        mat, _ = helmholtz_block_system(12, 3)
        fact = ARDFactorization(mat, nranks=2)
        b = random_rhs(12, 3, nrhs=6, seed=2)
        x = fact.solve(b, refine=1, max_batch=2)
        assert mat.residual(x, b) < 1e-12

    def test_invalid_batch_rejected(self):
        from repro.workloads import poisson_block_system

        mat, _ = poisson_block_system(6, 2)
        fact = ThomasFactorization(mat)
        with pytest.raises(ShapeError):
            fact.solve(random_rhs(6, 2, 2, seed=3), max_batch=0)


class TestBreakeven:
    def test_small_breakeven(self):
        """The factor/solve split pays off within a handful of RHS."""
        r_star = ard_breakeven_r(n=256, m=8, p=16, cost_model=PAPER_ERA_MODEL)
        assert 1 <= r_star <= 8

    def test_breakeven_is_tight(self):
        r_star = ard_breakeven_r(n=512, m=16, p=8, cost_model=PAPER_ERA_MODEL)
        kwargs = dict(n=512, m=16, p=8, cost_model=PAPER_ERA_MODEL)
        assert predict_time("ard", r=r_star, **kwargs) < predict_time(
            "rd", r=r_star, **kwargs
        )
        if r_star > 1:
            assert predict_time("ard", r=r_star - 1, **kwargs) >= predict_time(
                "rd", r=r_star - 1, **kwargs
            )

    def test_matches_simulation(self):
        """The modelled break-even is consistent with measured virtual
        times: at 4x the break-even R, ARD clearly wins in simulation."""
        from repro.comm import run_spmd
        from repro.core import distribute_matrix, distribute_rhs, rd_solve_spmd

        n, m, p = 64, 4, 4
        r_star = ard_breakeven_r(n=n, m=m, p=p, cost_model=PAPER_ERA_MODEL)
        r = max(4 * r_star, 8)
        mat, _ = helmholtz_block_system(n, m)
        b = random_rhs(n, m, r, seed=4)
        fact = ARDFactorization(mat, nranks=p, cost_model=PAPER_ERA_MODEL)
        fact.solve(b)
        ard_vt = fact.factor_result.virtual_time + fact.last_solve_result.virtual_time
        chunks = distribute_matrix(mat, p)
        d = distribute_rhs(b, p)
        rd_vt = run_spmd(
            rd_solve_spmd, p, cost_model=PAPER_ERA_MODEL, copy_messages=False,
            rank_args=list(zip(chunks, d)),
        ).virtual_time
        assert ard_vt < rd_vt
