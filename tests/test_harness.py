"""Tests for the experiment harness (smoke-scale runs of every entry)."""

import pathlib

import pytest

from repro.exceptions import ExperimentError
from repro.harness import EXPERIMENTS, get_experiment, run_experiment
from repro.harness.__main__ import main as cli_main


class TestRegistry:
    def test_registry_complete(self):
        expected = {
            "recon-T1", "recon-T2", "recon-F1", "recon-F2", "recon-F3",
            "recon-F4", "recon-F5", "recon-F6", "recon-F7", "recon-S1",
            "recon-S2", "abl-A1", "abl-A2", "abl-A3", "abl-A4", "abl-A5",
            "abl-A6",
        }
        assert set(EXPERIMENTS) == expected

    def test_lookup_unknown(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_experiment("recon-F99")

    def test_entries_have_metadata(self):
        for exp in EXPERIMENTS.values():
            assert exp.title
            assert exp.description
            assert callable(exp.func)


@pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
def test_experiment_smoke(exp_id, tmp_path):
    result = run_experiment(exp_id, "smoke", out_dir=tmp_path, verbose=False)
    assert result.exp_id == exp_id
    assert result.rows, f"{exp_id} produced no rows"
    assert all(len(row) == len(result.headers) for row in result.rows)
    rendered = result.render()
    assert exp_id in rendered
    csv_path = pathlib.Path(tmp_path) / f"{exp_id}.csv"
    assert csv_path.exists()
    assert csv_path.read_text().splitlines()[0] == ",".join(result.headers)


class TestResultHelpers:
    def test_column(self):
        result = run_experiment("recon-T2", "smoke", verbose=False)
        methods = result.column("method")
        assert "ard_factor" in methods
        with pytest.raises(ValueError):
            result.column("nonexistent")


class TestHeadlineClaims:
    """The reconstructed figures must show the paper's qualitative shape
    even at smoke scale."""

    def test_f1_speedup_grows_with_r(self):
        result = run_experiment("recon-F1", "smoke", verbose=False)
        speedups = result.column("speedup")
        rs = result.column("R")
        assert speedups[-1] > speedups[0]
        assert rs[-1] > rs[0]
        assert speedups[-1] > 2.0

    def test_t1_predictions_accurate(self):
        result = run_experiment("recon-T1", "smoke", verbose=False)
        for ratio in result.column("ratio"):
            assert 0.85 < ratio < 1.15

    def test_s1_errors_within_growth_bound(self):
        result = run_experiment("recon-S1", "smoke", verbose=False)
        assert all(result.column("within_1e3x"))

    def test_a1_scans_agree(self):
        result = run_experiment("abl-A1", "smoke", verbose=False)
        assert all(result.column("matches_ks"))

    def test_a1_pipeline_slower_at_scale(self):
        result = run_experiment("abl-A1", "smoke", verbose=False)
        rows = {(p, s): vt for p, s, vt, *_ in result.rows}
        assert rows[(8, "pipeline")] > rows[(8, "kogge_stone")]


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "recon-F1" in out

    def test_run(self, capsys, tmp_path):
        assert cli_main(["run", "recon-T2", "--scale", "smoke",
                         "--out", str(tmp_path)]) == 0
        assert (tmp_path / "recon-T2.csv").exists()

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "bogus"])
