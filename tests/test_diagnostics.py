"""Tests for stability/feasibility diagnostics."""

import warnings

import numpy as np
import pytest

from repro.core.diagnostics import (
    SystemDiagnostics,
    block_diagonal_dominance,
    diagnose,
    superdiagonal_rconds,
    transfer_growth_factor,
)
from repro.exceptions import ShapeError, StabilityWarning
from repro.linalg.blocktridiag import BlockTridiagonalMatrix
from repro.workloads import (
    helmholtz_block_system,
    poisson_block_system,
    random_block_dd_system,
)


class TestSuperdiagonalRconds:
    def test_identity_blocks(self):
        mat, _ = poisson_block_system(4, 3)  # U = -I: perfectly conditioned
        np.testing.assert_allclose(superdiagonal_rconds(mat), 1.0)

    def test_single_block(self):
        mat, _ = poisson_block_system(1, 3)
        assert superdiagonal_rconds(mat).size == 0

    def test_singular_detected(self):
        diag = np.stack([np.eye(2)] * 2)
        off = np.zeros((1, 2, 2))
        mat = BlockTridiagonalMatrix(off.copy(), diag, off.copy())
        assert superdiagonal_rconds(mat)[0] == 0.0


class TestDominance:
    def test_strongly_dominant(self):
        mat, _ = random_block_dd_system(6, 3, dominance=4.0, seed=0)
        assert block_diagonal_dominance(mat) > 1.0

    def test_helmholtz_not_dominant(self):
        mat, _ = helmholtz_block_system(8, 3)
        assert block_diagonal_dominance(mat) < 1.0

    def test_single_block_no_neighbours(self):
        mat, _ = poisson_block_system(1, 2)
        assert block_diagonal_dominance(mat) == np.inf


class TestGrowthFactor:
    def test_bounded_for_helmholtz(self):
        mat, _ = helmholtz_block_system(128, 4)
        assert transfer_growth_factor(mat) < 100.0

    def test_explodes_for_poisson(self):
        mat, _ = poisson_block_system(24, 4)
        assert transfer_growth_factor(mat) > 1e6

    def test_growth_monotone_in_length(self):
        short, _ = poisson_block_system(8, 3)
        long, _ = poisson_block_system(16, 3)
        assert transfer_growth_factor(long) > transfer_growth_factor(short)

    def test_single_block(self):
        mat, _ = poisson_block_system(1, 3)
        assert transfer_growth_factor(mat) == 1.0

    def test_probe_validation(self):
        mat, _ = poisson_block_system(4, 2)
        with pytest.raises(ShapeError):
            transfer_growth_factor(mat, nprobe=0)


class TestDiagnose:
    def test_feasible_and_stable(self):
        mat, _ = helmholtz_block_system(32, 3)
        diag = diagnose(mat, warn=False)
        assert isinstance(diag, SystemDiagnostics)
        assert diag.rd_feasible
        assert diag.rd_stable

    def test_feasible_but_unstable_warns(self):
        mat, _ = poisson_block_system(32, 4)
        with pytest.warns(StabilityWarning):
            diag = diagnose(mat)
        assert diag.rd_feasible
        assert not diag.rd_stable

    def test_warn_suppressed(self):
        mat, _ = poisson_block_system(32, 4)
        with warnings.catch_warnings():
            warnings.simplefilter("error", StabilityWarning)
            diagnose(mat, warn=False)

    def test_infeasible_reports_inf_growth(self):
        diag_blocks = np.stack([np.eye(2)] * 2)
        off = np.zeros((1, 2, 2))
        mat = BlockTridiagonalMatrix(off.copy(), diag_blocks, off.copy())
        diag = diagnose(mat, warn=False)
        assert not diag.rd_feasible
        assert diag.growth == np.inf
