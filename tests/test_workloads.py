"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.core.diagnostics import superdiagonal_rconds, transfer_growth_factor
from repro.exceptions import ShapeError
from repro.workloads import (
    convection_diffusion_system,
    heat_implicit_system,
    helmholtz_block_system,
    multigroup_diffusion_system,
    point_source_rhs,
    poisson_block_system,
    random_block_dd_system,
    random_rhs,
    smooth_rhs,
    toeplitz_block_system,
)

GENERATORS = [
    poisson_block_system,
    heat_implicit_system,
    convection_diffusion_system,
    multigroup_diffusion_system,
    random_block_dd_system,
    helmholtz_block_system,
]


@pytest.mark.parametrize("gen", GENERATORS)
class TestGeneratorContracts:
    def test_shapes_and_info(self, gen):
        mat, info = gen(6, 3, seed=0)
        assert mat.nblocks == 6
        assert mat.block_size == 3
        assert info["nblocks"] == 6
        assert info["block_size"] == 3
        assert "name" in info

    def test_superdiagonal_invertible(self, gen):
        mat, _ = gen(8, 4, seed=1)
        rconds = superdiagonal_rconds(mat)
        assert rconds.min() > 1e-8

    def test_matrix_nonsingular(self, gen):
        mat, _ = gen(6, 3, seed=2)
        assert abs(np.linalg.det(mat.to_dense())) > 0

    def test_single_block(self, gen):
        mat, _ = gen(1, 3, seed=3)
        assert mat.nblocks == 1

    def test_invalid_sizes(self, gen):
        with pytest.raises(ShapeError):
            gen(0, 3)
        with pytest.raises(ShapeError):
            gen(3, 0)


class TestSpecificGenerators:
    def test_poisson_structure(self):
        mat, _ = poisson_block_system(4, 3)
        np.testing.assert_array_equal(mat.upper[0], -np.eye(3))
        assert mat.diag[0][0, 0] == 4.0

    def test_poisson_bad_coupling(self):
        with pytest.raises(ShapeError):
            poisson_block_system(4, 3, coupling=-1.0)

    def test_heat_parameters(self):
        mat, info = heat_implicit_system(4, 3, dt=0.5, dx=2.0, diffusivity=2.0)
        c = 0.5 * 2.0 / 4.0
        assert mat.diag[0][0, 0] == pytest.approx(1.0 + 4.0 * c)
        assert info["dt"] == 0.5

    def test_heat_bad_parameters(self):
        with pytest.raises(ShapeError):
            heat_implicit_system(4, 3, dt=-1.0)

    def test_convection_asymmetry(self):
        mat, _ = convection_diffusion_system(4, 3, peclet=0.5)
        assert not np.allclose(mat.to_dense(), mat.to_dense().T)

    def test_convection_bad_peclet(self):
        with pytest.raises(ShapeError):
            convection_diffusion_system(4, 3, peclet=1.0)

    def test_multigroup_dense_blocks(self):
        mat, _ = multigroup_diffusion_system(4, 5, seed=0)
        off_diag = mat.diag[0] - np.diag(np.diag(mat.diag[0]))
        assert np.abs(off_diag).max() > 0  # scattering couples groups

    def test_multigroup_deterministic(self):
        a, _ = multigroup_diffusion_system(4, 3, seed=42)
        b, _ = multigroup_diffusion_system(4, 3, seed=42)
        assert a.allclose(b)

    def test_multigroup_bad_params(self):
        with pytest.raises(ShapeError):
            multigroup_diffusion_system(4, 3, scattering=-0.1)

    def test_random_dd_dominance_enforced(self):
        mat, _ = random_block_dd_system(6, 4, dominance=3.0, seed=0)
        for i in range(6):
            diag_min = np.abs(np.diag(mat.diag[i])).min()
            row_sum = np.abs(mat.diag[i]).sum()
            # The shifted diagonal carries most of the block's mass.
            assert diag_min > row_sum / (2 * mat.block_size)

    def test_random_dd_bad_dominance(self):
        with pytest.raises(ShapeError):
            random_block_dd_system(4, 3, dominance=1.0)

    def test_helmholtz_bounded_growth(self):
        mat, _ = helmholtz_block_system(200, 4)
        assert transfer_growth_factor(mat) < 1e3

    def test_helmholtz_well_conditioned(self):
        mat, _ = helmholtz_block_system(64, 8)
        assert np.linalg.cond(mat.to_dense()) < 1e7

    def test_helmholtz_detuning_keeps_window(self):
        _, info = helmholtz_block_system(128, 8, theta=1.2, eps=0.2)
        assert abs(info["theta"]) + 2 * 0.2 < 2

    def test_helmholtz_bad_window(self):
        with pytest.raises(ShapeError):
            helmholtz_block_system(4, 3, theta=1.9, eps=0.3)

    def test_toeplitz_blocks(self):
        d = np.diag([2.0, 3.0])
        lo = np.eye(2)
        up = 2 * np.eye(2)
        mat, _ = toeplitz_block_system(3, lo, d, up)
        np.testing.assert_array_equal(mat.lower[1], lo)
        np.testing.assert_array_equal(mat.upper[0], up)

    def test_toeplitz_shape_mismatch(self):
        with pytest.raises(ShapeError):
            toeplitz_block_system(3, np.eye(2), np.eye(3), np.eye(3))


class TestRhsGenerators:
    def test_random_rhs_shape_and_determinism(self):
        a = random_rhs(4, 3, nrhs=5, seed=1)
        b = random_rhs(4, 3, nrhs=5, seed=1)
        assert a.shape == (4, 3, 5)
        np.testing.assert_array_equal(a, b)

    def test_random_rhs_validation(self):
        with pytest.raises(ShapeError):
            random_rhs(4, 3, nrhs=0)

    def test_smooth_rhs(self):
        out = smooth_rhs(4, 3, nrhs=2)
        assert out.shape == (4, 3, 2)
        flat = out.reshape(12, 2)
        # Column k is sin((k+1) * grid): smooth, bounded by 1.
        assert np.abs(flat).max() <= 1.0

    def test_smooth_rhs_validation(self):
        with pytest.raises(ShapeError):
            smooth_rhs(4, 3, nrhs=0)

    def test_point_sources(self):
        out = point_source_rhs(4, 3, [(0, 1, 2.0), (3, 2, -1.0)])
        assert out.shape == (4, 3, 2)
        assert out[0, 1, 0] == 2.0
        assert out[3, 2, 1] == -1.0
        assert np.count_nonzero(out) == 2

    def test_point_sources_out_of_range(self):
        with pytest.raises(ShapeError):
            point_source_rhs(4, 3, [(4, 0, 1.0)])
