"""Tests for the vectorized batched LU (repro.linalg.batchlu) and the
backend selection of the BatchedLU facade."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings, strategies as st

from repro.config import config_context
from repro.exceptions import ConfigError, SingularBlockError
from repro.linalg.batchlu import (
    first_singular_block,
    lu_factor_batched,
    lu_solve_batched,
)
from repro.linalg.blockops import BatchedLU


def _spd_batch(rng, n, m, dtype=np.float64):
    a = rng.standard_normal((n, m, m))
    if np.dtype(dtype).kind == "c":
        a = a + 1j * rng.standard_normal((n, m, m))
    return (a + m * np.eye(m)).astype(dtype)


def _reconstruct(lu, piv):
    """Rebuild each block from its packed factors: A = P L U."""
    n, m, _ = lu.shape
    out = np.empty_like(lu)
    for i in range(n):
        ell = np.tril(lu[i], -1) + np.eye(m, dtype=lu.dtype)
        u = np.triu(lu[i])
        a = ell @ u
        for k in range(m - 1, -1, -1):  # undo P^T = S_{m-1} ... S_0
            p = piv[i, k]
            a[[k, p]] = a[[p, k]]
        out[i] = a
    return out


class TestFactorBatched:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.complex128])
    def test_reconstructs_input(self, rng, dtype):
        a = _spd_batch(rng, 6, 4, dtype)
        lu, piv = lu_factor_batched(a)
        assert lu.dtype == a.dtype and piv.shape == (6, 4)
        tol = 1e-4 if dtype == np.float32 else 1e-10
        np.testing.assert_allclose(_reconstruct(lu, piv), a, atol=tol)

    def test_matches_scipy_factors(self, rng):
        """Same pivot choices as LAPACK (first-maximum tie-break), so
        the packed factors agree elementwise."""
        a = _spd_batch(rng, 5, 4)
        lu, piv = lu_factor_batched(a)
        for i in range(5):
            slu, spiv = scipy.linalg.lu_factor(a[i])
            np.testing.assert_array_equal(piv[i], spiv)
            np.testing.assert_allclose(lu[i], slu, atol=1e-12)

    def test_pivoting_handles_zero_leading_entry(self):
        a = np.array([[[0.0, 1.0], [1.0, 0.0]]])
        lu, piv = lu_factor_batched(a)
        np.testing.assert_allclose(_reconstruct(lu, piv), a)

    def test_zero_pivot_stays_finite(self):
        """A singular block must not poison the batch with inf/NaN —
        the unscaled column is the LAPACK info>0 behaviour the
        singularity scan relies on."""
        a = np.stack([np.eye(2), np.ones((2, 2))])
        lu, piv = lu_factor_batched(a)
        assert np.isfinite(lu).all()
        assert lu[1, 1, 1] == 0.0

    def test_empty_batch(self):
        lu, piv = lu_factor_batched(np.empty((0, 3, 3)))
        assert lu.shape == (0, 3, 3) and piv.shape == (0, 3)


class TestSolveBatched:
    def test_interop_scipy_factors_both_ways(self, rng):
        """Factors cross over between backends in both directions."""
        a = _spd_batch(rng, 4, 3)
        b = rng.standard_normal((4, 3, 2))
        lu, piv = lu_factor_batched(a)
        for i in range(4):
            np.testing.assert_allclose(
                scipy.linalg.lu_solve((lu[i], piv[i]), b[i]),
                np.linalg.solve(a[i], b[i]), atol=1e-10,
            )
            slu, spiv = scipy.linalg.lu_factor(a[i])
            got = lu_solve_batched(slu[None], spiv[None], b[i][None])
            np.testing.assert_allclose(
                got[0], np.linalg.solve(a[i], b[i]), atol=1e-10
            )

    def test_transposed(self, rng):
        a = _spd_batch(rng, 3, 5)
        b = rng.standard_normal((3, 5, 2))
        lu, piv = lu_factor_batched(a)
        x = lu_solve_batched(lu, piv, b, trans=1)
        np.testing.assert_allclose(np.swapaxes(a, 1, 2) @ x, b, atol=1e-10)

    def test_vector_rhs(self, rng):
        a = _spd_batch(rng, 4, 3)
        b = rng.standard_normal((4, 3))
        lu, piv = lu_factor_batched(a)
        x = lu_solve_batched(lu, piv, b)
        assert x.shape == (4, 3)
        np.testing.assert_allclose(
            np.einsum("nij,nj->ni", a, x), b, atol=1e-10
        )

    def test_dtype_promotion(self, rng):
        a = _spd_batch(rng, 2, 3, np.float32)
        lu, piv = lu_factor_batched(a)
        x = lu_solve_batched(lu, piv, np.ones((2, 3, 1), dtype=np.float64))
        assert x.dtype == np.float64


class TestFirstSingularBlock:
    def test_healthy_batch(self, rng):
        lu, _ = lu_factor_batched(_spd_batch(rng, 3, 4))
        assert first_singular_block(lu, 1e-13) is None

    def test_reports_lowest_index(self):
        blocks = np.stack([np.eye(2), np.zeros((2, 2)), np.zeros((2, 2))])
        lu, _ = lu_factor_batched(blocks)
        idx, kind, ratio = first_singular_block(lu, 1e-13)
        assert (idx, kind, ratio) == (1, "singular", 0.0)

    def test_nonfinite_takes_precedence(self):
        lu = np.stack([np.diag([1.0, np.nan]), np.zeros((2, 2))])
        idx, kind, _ = first_singular_block(lu, 1e-13)
        assert (idx, kind) == (0, "nonfinite")

    def test_rcond_threshold(self):
        lu = np.diag([1.0, 1e-10])[None]
        assert first_singular_block(lu, 1e-13) is None
        assert first_singular_block(lu, 1e-8) is not None


class TestBackendParity:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.complex128])
    def test_factors_and_solutions_agree(self, rng, dtype):
        a = _spd_batch(rng, 8, 5, dtype)
        b = rng.standard_normal((8, 5, 3)).astype(dtype)
        batched = BatchedLU(a, backend="batched")
        loop = BatchedLU(a, backend="scipy_loop")
        rtol = 1e-5 if dtype == np.float32 else 1e-12
        if np.dtype(dtype).kind != "c":
            # Real pivoting tie-breaks identically (first maximum), so
            # the packed factors agree elementwise.  Complex LAPACK
            # pivots on |re| + |im| rather than the true modulus, so
            # only the solutions are comparable there.
            np.testing.assert_array_equal(batched._piv, loop._piv)
            np.testing.assert_allclose(
                batched._lu, loop._lu, rtol=rtol, atol=rtol
            )
        for transposed in (False, True):
            np.testing.assert_allclose(
                batched.solve(b, transposed=transposed),
                loop.solve(b, transposed=transposed),
                rtol=rtol, atol=rtol,
            )

    @pytest.mark.parametrize("backend", ["batched", "scipy_loop"])
    def test_singularity_error_parity(self, backend):
        blocks = np.stack([np.eye(3), np.zeros((3, 3))])
        with pytest.raises(SingularBlockError, match="block 11") as exc:
            BatchedLU(blocks, block_offset=10, backend=backend)
        assert exc.value.block_index == 11

    @pytest.mark.parametrize("backend", ["batched", "scipy_loop"])
    def test_nonfinite_error_parity(self, backend):
        block = np.array([[[1.0, 0.0], [0.0, np.inf]]])
        with pytest.raises(SingularBlockError, match="non-finite") as exc:
            BatchedLU(block, backend=backend)
        assert exc.value.block_index == 0

    def test_backend_from_config(self, rng):
        a = _spd_batch(rng, 2, 3)
        with config_context(blockops_backend="scipy_loop"):
            assert BatchedLU(a).backend == "scipy_loop"
        assert BatchedLU(a).backend == "batched"

    def test_unknown_backend_rejected(self, rng):
        with pytest.raises(ConfigError):
            BatchedLU(_spd_batch(rng, 2, 3), backend="magma")

    def test_copy_preserves_backend(self, rng):
        lu = BatchedLU(_spd_batch(rng, 2, 3), backend="scipy_loop")
        assert lu.copy().backend == "scipy_loop"

    def test_wide_panel_dispatch_parity(self, rng):
        """Above ``VECTOR_SOLVE_MAX_WORK`` the batched backend hands
        each block to LAPACK ``getrs``; the answers (and the transposed
        path) must be identical to the explicit loop backend."""
        from repro.linalg.blockops import VECTOR_SOLVE_MAX_WORK

        a = _spd_batch(rng, 4, 8)
        r = VECTOR_SOLVE_MAX_WORK // 8 + 1  # just past the crossover
        b = rng.standard_normal((4, 8, r))
        batched = BatchedLU(a, backend="batched")
        loop = BatchedLU(a, backend="scipy_loop")
        for transposed in (False, True):
            np.testing.assert_allclose(
                batched.solve(b, transposed=transposed),
                loop.solve(b, transposed=transposed),
                rtol=1e-12, atol=1e-12,
            )

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 7), st.integers(1, 6), st.integers(1, 4),
           st.integers(0, 10_000))
    def test_property_backend_parity(self, n, m, r, seed):
        rng = np.random.default_rng(seed)
        a = _spd_batch(rng, n, m)
        b = rng.standard_normal((n, m, r))
        xb = BatchedLU(a, backend="batched").solve(b)
        xl = BatchedLU(a, backend="scipy_loop").solve(b)
        np.testing.assert_allclose(xb, xl, rtol=1e-10, atol=1e-12)
