"""Tests for the static SPMD protocol analyzer (repro.check.proto).

Layout mirrors the acceptance criteria:

- one true-positive and one near-miss fixture per RC201-RC206 rule;
- cross-validation: every program the runtime ``SpmdVerifier`` /
  deadlock detector flags in tests/test_check.py is flagged statically
  at the same rank count, with the analogous rule;
- the shipped solver programs (repro.check.entries) analyze clean at
  P in {2, 4, 8} inside the CI time budget;
- CLI, --explain, JSON/SARIF output, noqa suppression, and the
  op-table-vs-Communicator conformance contract.
"""

from __future__ import annotations

import inspect
import json
import time

import pytest

from repro.check.__main__ import main as check_main
from repro.check.proto import (
    analyze_path,
    analyze_target,
    render_explain,
    resolve_target,
)
from repro.comm.communicator import Communicator
from repro.comm.optable import (
    COLLECTIVE_OPS,
    NONBLOCKING_OPS,
    OP_TABLE,
    POINT_TO_POINT_OPS,
)


def analyze_src(tmp_path, source: str, nranks: int, program: str = "program"):
    """Write ``source`` to a fixture file and analyze one program."""
    path = tmp_path / "fixture.py"
    path.write_text(source, encoding="utf-8")
    runs = analyze_path(str(path), [nranks], programs=[program])
    assert len(runs) == 1
    return runs[0]


def rule_ids(run) -> set[str]:
    return {f.rule_id for f in run.findings}


def error_ids(run) -> set[str]:
    return {f.rule_id for f in run.errors}


# ---------------------------------------------------------------------------
# RC201: unmatched message
# ---------------------------------------------------------------------------


class TestRC201:
    def test_send_never_received(self, tmp_path):
        run = analyze_src(tmp_path, (
            "def program(comm):\n"
            "    if comm.rank == 0:\n"
            "        comm.send('x', 1, tag=7)\n"
        ), 2)
        assert error_ids(run) == {"RC201"}
        f = [f for f in run.findings if f.rule_id == "RC201"][0]
        assert f.line == 3
        assert "never received" in f.message

    def test_recv_nobody_sends(self, tmp_path):
        run = analyze_src(tmp_path, (
            "def program(comm):\n"
            "    return comm.recv()\n"
        ), 2)
        assert error_ids(run) == {"RC201"}
        assert "blocks forever" in run.findings[0].message

    def test_near_miss_matched_pair_clean(self, tmp_path):
        run = analyze_src(tmp_path, (
            "def program(comm):\n"
            "    if comm.rank == 0:\n"
            "        comm.send('x', 1, tag=7)\n"
            "    elif comm.rank == 1:\n"
            "        return comm.recv(source=0, tag=7)\n"
        ), 2)
        assert run.findings == []


# ---------------------------------------------------------------------------
# RC202: tag or peer mismatch
# ---------------------------------------------------------------------------


class TestRC202:
    def test_tag_mismatch(self, tmp_path):
        run = analyze_src(tmp_path, (
            "def program(comm):\n"
            "    if comm.rank == 0:\n"
            "        comm.send('x', 1, tag=1)\n"
            "    else:\n"
            "        return comm.recv(source=0, tag=2)\n"
        ), 2)
        assert "RC202" in error_ids(run)
        f = [f for f in run.findings if f.rule_id == "RC202"][0]
        assert "different tags" in f.message

    def test_out_of_range_dest(self, tmp_path):
        run = analyze_src(tmp_path, (
            "def program(comm):\n"
            "    comm.send('x', comm.size, tag=1)\n"
        ), 2)
        assert "RC202" in error_ids(run)

    def test_near_miss_same_tags_clean(self, tmp_path):
        run = analyze_src(tmp_path, (
            "def program(comm):\n"
            "    if comm.rank == 0:\n"
            "        comm.send('x', 1, tag=2)\n"
            "    elif comm.rank == 1:\n"
            "        return comm.recv(source=0, tag=2)\n"
        ), 2)
        assert run.findings == []


# ---------------------------------------------------------------------------
# RC203: send-recv deadlock cycles
# ---------------------------------------------------------------------------


class TestRC203:
    def test_recv_before_send_ring(self, tmp_path):
        run = analyze_src(tmp_path, (
            "def program(comm):\n"
            "    nxt = (comm.rank + 1) % comm.size\n"
            "    val = comm.recv(source=nxt, tag=3)\n"
            "    comm.send(val, nxt, tag=3)\n"
        ), 3)
        assert error_ids(run) == {"RC203"}
        assert "wait-for cycle" in run.findings[0].message

    def test_near_miss_send_first_ring_clean(self, tmp_path):
        run = analyze_src(tmp_path, (
            "def program(comm):\n"
            "    right = (comm.rank + 1) % comm.size\n"
            "    left = (comm.rank - 1) % comm.size\n"
            "    comm.send(comm.rank, right, tag=3)\n"
            "    return comm.recv(source=left, tag=3)\n"
        ), 3)
        assert run.findings == []


# ---------------------------------------------------------------------------
# RC204: collective divergence
# ---------------------------------------------------------------------------


class TestRC204:
    def test_different_ops_same_slot(self, tmp_path):
        run = analyze_src(tmp_path, (
            "def program(comm):\n"
            "    if comm.rank == 0:\n"
            "        return comm.bcast(0, root=0)\n"
            "    return comm.allreduce(1)\n"
        ), 2)
        assert error_ids(run) == {"RC204"}
        msg = run.findings[0].message
        assert "bcast" in msg and "allreduce" in msg

    def test_root_mismatch(self, tmp_path):
        run = analyze_src(tmp_path, (
            "def program(comm):\n"
            "    return comm.bcast(0, root=comm.rank)\n"
        ), 2)
        assert error_ids(run) == {"RC204"}
        assert "root" in run.findings[0].message

    def test_subset_never_enters(self, tmp_path):
        run = analyze_src(tmp_path, (
            "def program(comm):\n"
            "    comm.barrier()\n"
            "    if comm.rank == 1:\n"
            "        comm.barrier()\n"
            "    return comm.allreduce(comm.rank)\n"
        ), 2)
        assert error_ids(run) == {"RC204"}

    def test_near_miss_uniform_collectives_clean(self, tmp_path):
        run = analyze_src(tmp_path, (
            "def program(comm):\n"
            "    comm.barrier()\n"
            "    items = comm.allgather(comm.rank)\n"
            "    comm.scatter(items, root=1)\n"
            "    comm.alltoall(items)\n"
            "    comm.reduce(comm.rank, root=1)\n"
            "    comm.exscan(comm.rank)\n"
            "    return comm.scan(comm.rank)\n"
        ), 4)
        assert run.findings == []

    def test_near_miss_split_subgroups_diverge_legitimately(self, tmp_path):
        run = analyze_src(tmp_path, (
            "def program(comm):\n"
            "    sub = comm.split(comm.rank % 2)\n"
            "    if comm.rank % 2 == 0:\n"
            "        sub.barrier()\n"
            "        return sub.allreduce(comm.rank)\n"
            "    return sub.allgather(comm.rank)\n"
        ), 4)
        assert run.findings == []

    def test_near_miss_dup_clean(self, tmp_path):
        run = analyze_src(tmp_path, (
            "def program(comm):\n"
            "    other = comm.dup()\n"
            "    return other.allreduce(1)\n"
        ), 3)
        assert run.findings == []


# ---------------------------------------------------------------------------
# RC205: mutation of an in-flight isend payload
# ---------------------------------------------------------------------------


class TestRC205:
    def test_mutate_between_isend_and_wait(self, tmp_path):
        run = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def program(comm):\n"
            "    buf = np.zeros(4)\n"
            "    req = comm.isend(buf, (comm.rank + 1) % comm.size, tag=9)\n"
            "    buf[0] = 1.0\n"
            "    req.wait()\n"
            "    return comm.recv(source=(comm.rank - 1) % comm.size, tag=9)\n"
        ), 2)
        assert "RC205" in error_ids(run)
        f = [f for f in run.findings if f.rule_id == "RC205"][0]
        assert f.line == 5

    def test_mutation_through_view_is_still_flagged(self, tmp_path):
        run = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def program(comm):\n"
            "    buf = np.zeros(4)\n"
            "    view = buf.reshape(2, 2)\n"
            "    req = comm.isend(buf, (comm.rank + 1) % comm.size, tag=9)\n"
            "    view[0] = 1.0\n"
            "    req.wait()\n"
            "    return comm.recv(source=(comm.rank - 1) % comm.size, tag=9)\n"
        ), 2)
        assert "RC205" in error_ids(run)

    def test_near_miss_mutate_after_wait_clean(self, tmp_path):
        run = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def program(comm):\n"
            "    buf = np.zeros(4)\n"
            "    req = comm.isend(buf, (comm.rank + 1) % comm.size, tag=9)\n"
            "    got = comm.recv(source=(comm.rank - 1) % comm.size, tag=9)\n"
            "    req.wait()\n"
            "    buf[0] = 1.0\n"
            "    return got\n"
        ), 2)
        assert run.findings == []

    def test_near_miss_send_copy_clean(self, tmp_path):
        run = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def program(comm):\n"
            "    buf = np.zeros(4)\n"
            "    req = comm.isend(buf.copy(), (comm.rank + 1) % comm.size,\n"
            "                     tag=9)\n"
            "    buf[0] = 1.0\n"
            "    req.wait()\n"
            "    return comm.recv(source=(comm.rank - 1) % comm.size, tag=9)\n"
        ), 2)
        assert run.findings == []


# ---------------------------------------------------------------------------
# RC206: mutation of a zero-copy received view
# ---------------------------------------------------------------------------


class TestRC206:
    def test_mutate_received_payload(self, tmp_path):
        run = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def program(comm):\n"
            "    buf = np.zeros(4)\n"
            "    comm.send(buf, (comm.rank + 1) % comm.size, tag=11)\n"
            "    got = comm.recv(source=(comm.rank - 1) % comm.size, tag=11)\n"
            "    got[0] = 2.0\n"
            "    return got\n"
        ), 2)
        assert "RC206" in error_ids(run)
        f = [f for f in run.findings if f.rule_id == "RC206"][0]
        assert f.line == 6
        assert "zero-copy" in f.message

    def test_mutate_bcast_payload(self, tmp_path):
        run = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def program(comm):\n"
            "    x = np.zeros(3) if comm.rank == 0 else None\n"
            "    x = comm.bcast(x, root=0)\n"
            "    if comm.rank == 1:\n"
            "        x += 1.0\n"
            "    return x\n"
        ), 2)
        assert "RC206" in error_ids(run)

    def test_near_miss_mutate_copy_clean(self, tmp_path):
        run = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def program(comm):\n"
            "    buf = np.zeros(4)\n"
            "    comm.send(buf, (comm.rank + 1) % comm.size, tag=11)\n"
            "    got = comm.recv(source=(comm.rank - 1) % comm.size,\n"
            "                    tag=11).copy()\n"
            "    got[0] = 2.0\n"
            "    return got\n"
        ), 2)
        assert run.findings == []


# ---------------------------------------------------------------------------
# Cross-validation against the runtime verifier fixtures
# (tests/test_check.py runs these same programs under run_spmd and
# expects SpmdDivergenceError / DeadlockError / UnconsumedMessageError
# at the rank counts used here).
# ---------------------------------------------------------------------------


RUNTIME_FIXTURES = [
    # (source, nranks, expected static rule)
    (
        "def program(comm):\n"
        "    if comm.rank == 0:\n"
        "        return comm.bcast(0, root=0)\n"
        "    return comm.allreduce(1)\n",
        2, "RC204",
    ),
    (
        "def program(comm):\n"
        "    root = comm.rank\n"
        "    return comm.bcast(0, root=root)\n",
        2, "RC204",
    ),
    (
        "def program(comm):\n"
        "    comm.barrier()\n"
        "    if comm.rank == 1:\n"
        "        comm.barrier()\n"
        "    return comm.allreduce(comm.rank)\n",
        2, "RC204",
    ),
    (
        "def program(comm):\n"
        "    nxt = (comm.rank + 1) % comm.size\n"
        "    val = comm.recv(source=nxt, tag=3)\n"
        "    comm.send(val, nxt, tag=3)\n",
        3, "RC203",
    ),
    (
        # Mutual recv with nobody sending: the runtime names the
        # wait-for cycle, and so does the static pass.
        "def program(comm):\n"
        "    return comm.recv(source=(comm.rank + 1) % comm.size, tag=5)\n",
        2, "RC203",
    ),
    (
        "def program(comm):\n"
        "    if comm.rank == 0:\n"
        "        comm.send('x', 1, tag=1)\n"
        "    else:\n"
        "        return comm.recv(source=0, tag=2)\n",
        2, "RC202",
    ),
    (
        "def program(comm):\n"
        "    if comm.rank == 0:\n"
        "        comm.send('x', 1, tag=7)\n",
        2, "RC201",
    ),
    (
        "def program(comm):\n"
        "    return comm.recv()\n",
        2, "RC201",
    ),
]


class TestRuntimeCrossValidation:
    @pytest.mark.parametrize("source,nranks,expected",
                             [(s, n, r) for s, n, r in RUNTIME_FIXTURES])
    def test_runtime_flagged_program_is_flagged_statically(
            self, tmp_path, source, nranks, expected):
        run = analyze_src(tmp_path, source, nranks)
        assert expected in error_ids(run), (
            f"runtime-flagged program not caught statically at "
            f"P={nranks}; findings: {[f.format() for f in run.findings]}"
        )

    def test_runtime_clean_programs_are_clean_statically(self, tmp_path):
        clean = [
            # test_clean_program_no_warning
            ("def program(comm):\n"
             "    comm.send(comm.rank, (comm.rank + 1) % comm.size, tag=1)\n"
             "    return comm.recv(tag=1)\n", 2),
            # test_clean_program_passes_all_collectives
            ("def program(comm):\n"
             "    comm.barrier()\n"
             "    items = comm.allgather(comm.rank)\n"
             "    comm.scatter(items, root=1)\n"
             "    comm.alltoall(items)\n"
             "    comm.reduce(comm.rank, root=1)\n"
             "    comm.exscan(comm.rank)\n"
             "    return comm.scan(comm.rank)\n", 4),
        ]
        for source, nranks in clean:
            run = analyze_src(tmp_path, source, nranks)
            assert run.findings == [], [f.format() for f in run.findings]


# ---------------------------------------------------------------------------
# Analyzability warnings (RC207) and noqa plumbing
# ---------------------------------------------------------------------------


class TestWarnings:
    def test_rank_dependent_unfoldable_guard_warns(self, tmp_path):
        run = analyze_src(tmp_path, (
            "import random\n"
            "def program(comm):\n"
            "    if random.random() < comm.rank:\n"
            "        comm.barrier()\n"
        ), 2)
        assert rule_ids(run) == {"RC207"}
        assert error_ids(run) == set()
        assert all(f.severity == "warning" for f in run.findings)

    def test_rank_uniform_unknown_guard_does_not_warn(self, tmp_path):
        run = analyze_src(tmp_path, (
            "import random\n"
            "def program(comm):\n"
            "    if random.random() < 0.5:\n"
            "        comm.barrier()\n"
        ), 2)
        assert run.findings == []

    def test_unfoldable_send_dest_warns(self, tmp_path):
        run = analyze_src(tmp_path, (
            "import os\n"
            "def program(comm):\n"
            "    comm.send('x', int(os.environ['D']), tag=0)\n"
        ), 2)
        assert rule_ids(run) == {"RC207"}

    def test_noqa_suppresses_proto_finding(self, tmp_path):
        run = analyze_src(tmp_path, (
            "def program(comm):\n"
            "    if comm.rank == 0:\n"
            "        comm.send('x', 1, tag=7)  # repro: noqa[RC201]\n"
        ), 2)
        assert run.findings == []


# ---------------------------------------------------------------------------
# Shipped solvers: the CI regression gate
# ---------------------------------------------------------------------------


class TestSolverGate:
    def test_all_solvers_clean_at_2_4_8_under_budget(self):
        start = time.monotonic()
        runs = analyze_target("repro.check.entries", [2, 4, 8])
        elapsed = time.monotonic() - start
        programs = {run.program for run in runs}
        assert programs == {"rd_program", "ard_program", "spike_program",
                            "bcyclic_program"}
        assert len(runs) == 12
        for run in runs:
            assert run.findings == [], (
                f"{run.program} @ P={run.nranks}: "
                f"{[f.format() for f in run.findings]}"
            )
        assert elapsed < 5.0, f"solver gate took {elapsed:.2f}s"

    def test_events_cover_real_communication(self):
        runs = analyze_target("repro.check.entries", [4],
                              programs=["rd_program"])
        events = runs[0].events
        assert set(events) == {0, 1, 2, 3}
        # The butterfly exchanges plus the closing bcast must appear.
        text = "\n".join(ev for rank in events for ev in events[rank])
        assert "send" in text and "allgather" in text and "bcast" in text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestProtoCli:
    def _fixture(self, tmp_path, source):
        path = tmp_path / "cli_fixture.py"
        path.write_text(source, encoding="utf-8")
        return str(path)

    def test_exit_zero_on_clean(self, tmp_path, capsys):
        path = self._fixture(tmp_path, (
            "def program(comm):\n"
            "    return comm.allreduce(comm.rank)\n"
        ))
        assert check_main(["proto", path, "--ranks", "2,3"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_exit_one_on_errors(self, tmp_path, capsys):
        path = self._fixture(tmp_path, (
            "def program(comm):\n"
            "    if comm.rank == 0:\n"
            "        comm.send('x', 1, tag=7)\n"
        ))
        assert check_main(["proto", path, "--ranks", "2"]) == 1
        assert "RC201" in capsys.readouterr().out

    def test_warnings_exit_zero_unless_strict(self, tmp_path, capsys):
        path = self._fixture(tmp_path, (
            "import os\n"
            "def program(comm):\n"
            "    comm.send('x', int(os.environ['D']), tag=0)\n"
        ))
        assert check_main(["proto", path, "--ranks", "2"]) == 0
        capsys.readouterr()
        assert check_main(["proto", path, "--ranks", "2", "--strict"]) == 1

    def test_explain_prints_event_sequences(self, tmp_path, capsys):
        path = self._fixture(tmp_path, (
            "def program(comm):\n"
            "    comm.send(comm.rank, (comm.rank + 1) % comm.size, tag=1)\n"
            "    return comm.recv(tag=1)\n"
        ))
        assert check_main(["proto", path, "--ranks", "2", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "rank 0:" in out and "rank 1:" in out
        assert "send(dest=1, tag=1)" in out
        assert "matched send" in out

    def test_json_format(self, tmp_path, capsys):
        path = self._fixture(tmp_path, (
            "def program(comm):\n"
            "    return comm.recv()\n"
        ))
        assert check_main(["proto", path, "--ranks", "2",
                           "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["program"] == "program"
        assert payload[0]["nranks"] == 2
        assert payload[0]["findings"][0]["rule_id"] == "RC201"

    def test_sarif_format(self, tmp_path, capsys):
        path = self._fixture(tmp_path, (
            "def program(comm):\n"
            "    return comm.recv()\n"
        ))
        assert check_main(["proto", path, "--ranks", "2,3",
                           "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.check proto"
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} == {"RC201"}
        # Identical findings from the P=2 and P=3 runs are deduplicated.
        assert len(run["results"]) == 1
        loc = run["results"][0]["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] == 2

    def test_bad_ranks_is_usage_error(self, tmp_path):
        path = self._fixture(tmp_path, "def program(comm):\n    pass\n")
        assert check_main(["proto", path, "--ranks", "nope"]) == 2
        assert check_main(["proto", path, "--ranks", "0"]) == 2

    def test_missing_target_is_usage_error(self):
        assert check_main(["proto", "no.such.module", "--ranks", "2"]) == 2

    def test_no_programs_is_usage_error(self, tmp_path):
        path = self._fixture(tmp_path, "X = 1\n")
        assert check_main(["proto", path, "--ranks", "2"]) == 2

    def test_lint_sarif_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def p(comm):\n"
            "    if comm.rank:\n"
            "        comm.barrier()\n",
            encoding="utf-8",
        )
        assert check_main(["lint", str(bad), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"][0]["ruleId"] == "RC101"

    def test_module_target_resolution(self):
        path = resolve_target("repro.check.entries")
        assert path.endswith("entries.py")
        with pytest.raises(FileNotFoundError):
            resolve_target("definitely.not.a.module")


# ---------------------------------------------------------------------------
# Op table conformance: the analyzer's machine-readable description of
# the Communicator surface must match the real class.
# ---------------------------------------------------------------------------


class TestOpTableConformance:
    def test_every_op_exists_with_matching_params(self):
        for name, spec in OP_TABLE.items():
            method = getattr(Communicator, name, None)
            assert method is not None, f"op table names missing method {name}"
            sig = inspect.signature(method)
            params = tuple(p for p in sig.parameters if p != "self")
            assert params == spec.params, (
                f"{name}: op table params {spec.params} != "
                f"signature {params}"
            )

    def test_param_roles_point_at_real_params(self):
        for name, spec in OP_TABLE.items():
            for role in ("payload_param", "peer_param", "tag_param",
                         "root_param"):
                idx = getattr(spec, role)
                if idx is not None:
                    assert 0 <= idx < len(spec.params), (name, role)

    def test_kind_partition(self):
        assert COLLECTIVE_OPS & POINT_TO_POINT_OPS == frozenset()
        assert NONBLOCKING_OPS == {"isend", "irecv"}
        assert "barrier" in COLLECTIVE_OPS and "send" in POINT_TO_POINT_OPS

    def test_no_public_comm_op_missing_from_table(self):
        # Public callables that communicate must be described; local
        # helpers and properties are exempt.
        # rank/size are topology accessors; payload_nbytes is the local
        # cost-accounting helper — none of them communicate.
        exempt = {"rank", "size", "payload_nbytes"}
        for name, member in vars(Communicator).items():
            if name.startswith("_") or name in exempt:
                continue
            if isinstance(member, property):
                continue
            if callable(member):
                assert name in OP_TABLE, (
                    f"Communicator.{name} is not described in "
                    "repro.comm.optable.OP_TABLE"
                )
