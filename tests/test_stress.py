"""Stress and randomized property tests across the whole stack."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.comm import run_spmd
from repro.core import ARDFactorization
from repro.linalg.reference import dense_solve
from repro.workloads import helmholtz_block_system, random_rhs


class TestCommStress:
    def test_random_traffic_delivered_exactly_once(self):
        """Every rank fires a burst of tagged messages at random
        destinations; every message must arrive exactly once with
        payload intact."""
        p, per_rank = 6, 20

        def program(comm):
            rng = np.random.default_rng(1000 + comm.rank)
            dests = rng.integers(0, comm.size, size=per_rank)
            # Announce how many messages each destination should expect.
            counts = np.zeros(comm.size, dtype=int)
            for d in dests:
                counts[d] += 1
            incoming = comm.alltoall([int(c) for c in counts])
            for seq, d in enumerate(dests):
                comm.send((comm.rank, seq), int(d), tag=7)
            received = [comm.recv(tag=7) for _ in range(sum(incoming))]
            comm.barrier()
            return sorted(received)

        res = run_spmd(program, p)
        all_received = [msg for rank_msgs in res.values for msg in rank_msgs]
        assert len(all_received) == p * per_rank
        assert sorted(all_received) == sorted(
            (src, seq) for src in range(p) for seq in range(per_rank)
        )

    def test_many_sequential_collectives(self):
        """Hundreds of back-to-back collectives must not cross-talk
        (tag-sequencing stress)."""

        def program(comm):
            ok = True
            for i in range(150):
                total = comm.allreduce(i + comm.rank)
                expected = comm.size * i + comm.size * (comm.size - 1) // 2
                ok = ok and (total == expected)
            return ok

        assert all(run_spmd(program, 5).values)

    def test_interleaved_subcommunicators(self):
        """Messages on parent, split and dup communicators interleave
        without leaking across contexts."""

        def program(comm):
            sub = comm.split(color=comm.rank % 2)
            dup = comm.dup()
            results = []
            for round_idx in range(10):
                a = comm.allreduce(1)
                b = sub.allreduce(1)
                c = dup.allreduce(2)
                results.append((a, b, c))
            return results

        res = run_spmd(program, 6)
        for rank, rows in enumerate(res.values):
            for a, b, c in rows:
                assert a == 6
                assert b == 3
                assert c == 12

    def test_large_payloads(self):
        def program(comm):
            data = np.full((512, 64), float(comm.rank))
            if comm.rank == 0:
                comm.send(data, 1)
                return None
            got = comm.recv(source=0)
            return float(got.sum())

        res = run_spmd(program, 2)
        assert res.values[1] == 0.0
        assert res.stats[0].bytes_sent == 512 * 64 * 8


class TestSolverPipelineProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        n=st.integers(2, 40),
        m=st.integers(1, 6),
        p=st.integers(1, 6),
        r=st.integers(1, 5),
        theta=st.floats(-1.2, 1.2),
        eps=st.floats(0.05, 0.3),
        seed=st.integers(0, 10_000),
    )
    def test_ard_matches_dense_on_random_bounded_systems(
        self, n, m, p, r, theta, eps, seed
    ):
        """For any oscillatory-window parameters, ARD on any rank count
        must match the dense reference to near machine precision."""
        if abs(theta) + 2 * eps >= 1.9:
            eps = (1.9 - abs(theta)) / 2 * 0.9
        mat, _ = helmholtz_block_system(n, m, theta=theta, eps=eps)
        b = random_rhs(n, m, nrhs=r, seed=seed)
        x = ARDFactorization(mat, nranks=p).solve(b)
        xref = dense_solve(mat, b)
        scale = max(1.0, float(np.max(np.abs(xref))))
        assert float(np.max(np.abs(x - xref))) / scale < 1e-7

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(4, 30),
        m=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    def test_solver_family_agrees(self, n, m, seed):
        """RD, ARD and the references agree pairwise on random
        well-behaved systems — a differential test across the whole
        solver family."""
        from repro import solve

        mat, _ = helmholtz_block_system(n, m)
        b = random_rhs(n, m, nrhs=2, seed=seed)
        xs = {
            method: solve(mat, b, method=method, nranks=3)
            for method in ("ard", "rd", "dense", "banded")
        }
        ref = xs["dense"]
        for method, x in xs.items():
            np.testing.assert_allclose(x, ref, rtol=1e-6, atol=1e-9,
                                       err_msg=method)
