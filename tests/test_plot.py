"""Tests for the ASCII figure renderer."""

import math

import pytest

from repro.exceptions import ShapeError
from repro.harness.experiments import ExperimentResult
from repro.harness.plot import ascii_plot, plot_experiment


class TestAsciiPlot:
    def test_basic_contains_markers_and_legend(self):
        text = ascii_plot(
            {"a": [(1, 1), (10, 10)], "b": [(1, 10), (10, 1)]},
            logx=True, logy=True, title="T",
        )
        assert text.splitlines()[0] == "T"
        assert "o a" in text and "x b" in text
        assert "o" in text and "x" in text

    def test_extreme_corners_mapped(self):
        text = ascii_plot({"s": [(1, 1), (100, 100)]}, width=20, height=6)
        rows = [line for line in text.splitlines() if "|" in line]
        # Max point on the top row, min point on the bottom row.
        assert "o" in rows[0]
        assert "o" in rows[-1]

    def test_log_axis_drops_nonpositive(self):
        text = ascii_plot({"s": [(0, 1), (-1, 2), (10, 3), (100, 4)]},
                          logx=True)
        assert text.count("o") >= 2  # legend marker + plotted points

    def test_nan_skipped(self):
        text = ascii_plot({"s": [(1, math.nan), (2, 5.0)]})
        assert "o" in text

    def test_all_unplottable_raises(self):
        with pytest.raises(ShapeError, match="no plottable"):
            ascii_plot({"s": [(0, 1)]}, logx=True)

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ShapeError):
            ascii_plot({"s": [(1, 1)]}, width=5, height=2)

    def test_overlap_marker(self):
        text = ascii_plot(
            {"a": [(1, 1)], "b": [(1, 1)]}, width=20, height=6
        )
        assert "&" in text

    def test_constant_series_handled(self):
        text = ascii_plot({"s": [(1, 5), (2, 5), (3, 5)]})
        assert "o" in text

    def test_axis_labels(self):
        text = ascii_plot({"s": [(1, 1), (2, 2)]}, xlabel="R", ylabel="t",
                          logy=True)
        assert "x: R" in text
        assert "y: t (log)" in text


class TestPlotExperiment:
    def _fake(self, exp_id, headers, rows):
        return ExperimentResult(exp_id, "fake", headers, rows)

    def test_known_recipe(self):
        result = self._fake(
            "recon-F1",
            ["R", "rd_vt", "ard_factor_vt", "ard_solve_vt", "ard_total_vt",
             "speedup", "rd_measured"],
            [[1, 1e-5, 1e-5, 1e-6, 1.1e-5, 0.9, True],
             [64, 6.4e-4, 1e-5, 5e-5, 6e-5, 10.7, True]],
        )
        text = plot_experiment(result)
        assert text is not None
        assert "recon-F1" in text

    def test_unknown_recipe_returns_none(self):
        result = self._fake("recon-T1", ["a"], [[1]])
        assert plot_experiment(result) is None

    def test_non_numeric_rows_filtered(self):
        result = self._fake(
            "abl-A2",
            ["batch", "calls", "total_solve_vt", "wall_s"],
            [["oops", 1, 2.0, 3.0], [8, 2, 1.0, 0.5]],
        )
        assert plot_experiment(result) is not None

    def test_every_figure_recipe_matches_real_headers(self):
        """Each recipe's columns must exist in the real experiment output
        (smoke scale) — guards against renamed columns."""
        from repro.harness.plot import _FIGURES
        from repro.harness import run_experiment

        for exp_id in ("recon-F1", "abl-A2"):
            result = run_experiment(exp_id, "smoke", verbose=False)
            x_col, y_cols, _, _ = _FIGURES[exp_id]
            assert x_col in result.headers
            for y in y_cols:
                assert y in result.headers
            assert plot_experiment(result) is not None
