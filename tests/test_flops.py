"""Tests for repro.util.flops."""

import threading

from repro.util.flops import (
    FlopCounter,
    counting_flops,
    current_counter,
    gemm_flops,
    lu_flops,
    lu_solve_flops,
    record_flops,
)


class TestFlopCounter:
    def test_empty(self):
        fc = FlopCounter()
        assert fc.total == 0
        assert fc.snapshot() == {}

    def test_add(self):
        fc = FlopCounter()
        fc.add("gemm", 100)
        fc.add("gemm", 50)
        fc.add("lu", 7)
        assert fc.total == 157
        assert fc.by_kernel["gemm"] == 150

    def test_merge(self):
        a, b = FlopCounter(), FlopCounter()
        a.add("gemm", 1)
        b.add("gemm", 2)
        b.add("trsm", 3)
        a.merge(b)
        assert a.snapshot() == {"gemm": 3, "trsm": 3}

    def test_reset(self):
        fc = FlopCounter()
        fc.add("x", 5)
        fc.reset()
        assert fc.total == 0


class TestCountingContext:
    def test_records_inside_context(self):
        with counting_flops() as fc:
            record_flops("gemm", 10)
        assert fc.total == 10

    def test_noop_outside_context(self):
        record_flops("gemm", 10)  # must not raise
        assert current_counter() is None

    def test_nesting_restores(self):
        with counting_flops() as outer:
            record_flops("a", 1)
            with counting_flops() as inner:
                record_flops("b", 2)
            record_flops("c", 4)
        assert outer.snapshot() == {"a": 1, "c": 4}
        assert inner.snapshot() == {"b": 2}

    def test_explicit_counter(self):
        fc = FlopCounter()
        with counting_flops(fc) as got:
            assert got is fc
            record_flops("k", 3)
        assert fc.total == 3

    def test_thread_isolation(self):
        results = {}

        def other():
            results["counter"] = current_counter()

        with counting_flops():
            t = threading.Thread(target=other)  # repro: noqa[RC103]
            t.start()
            t.join()
        assert results["counter"] is None


class TestKernelFormulas:
    def test_gemm(self):
        assert gemm_flops(2, 3, 4) == 48

    def test_lu(self):
        assert lu_flops(3) == 18

    def test_lu_solve(self):
        assert lu_solve_flops(3, 2) == 36
