"""Tests for the SPMD runtime: lifecycle, errors, deadlock, timing."""

import numpy as np
import pytest

from repro.comm import CostModel, run_spmd
from repro.comm.runtime import CommAborted
from repro.exceptions import CommError, DeadlockError
from repro.util.flops import record_flops


class TestRunSpmd:
    def test_values_by_rank(self):
        res = run_spmd(lambda comm: comm.rank * 10, 4)
        assert res.values == [0, 10, 20, 30]

    def test_single_rank_runs_inline(self):
        res = run_spmd(lambda comm: comm.size, 1)
        assert res.values == [1]

    def test_args_forwarded(self):
        res = run_spmd(lambda comm, a, b=0: a + b + comm.rank, 2, 5, b=1)
        assert res.values == [6, 7]

    def test_rank_args(self):
        res = run_spmd(lambda comm, x: x * 2, 3, rank_args=[(1,), (2,), (3,)])
        assert res.values == [2, 4, 6]

    def test_rank_args_wrong_length(self):
        with pytest.raises(CommError):
            run_spmd(lambda comm, x: x, 2, rank_args=[(1,)])

    def test_invalid_nranks(self):
        with pytest.raises(CommError):
            run_spmd(lambda comm: None, 0)

    def test_exception_propagates(self):
        def boom(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 failed")
            comm.recv(source=1)  # would block forever without abort

        with pytest.raises(ValueError, match="rank 1 failed"):
            run_spmd(boom, 2)

    def test_lowest_rank_exception_wins(self):
        def boom(comm):
            raise RuntimeError(f"rank {comm.rank}")

        with pytest.raises(RuntimeError, match="rank 0"):
            run_spmd(boom, 3)

    def test_wall_time_recorded(self):
        res = run_spmd(lambda comm: None, 2)
        assert res.wall_time >= 0.0


class TestDeadlockDetection:
    def test_mutual_recv_deadlocks(self):
        def program(comm):
            return comm.recv(source=(comm.rank + 1) % comm.size, tag=5)

        with pytest.raises(DeadlockError):
            run_spmd(program, 2)

    def test_recv_from_finished_rank_deadlocks(self):
        def program(comm):
            if comm.rank == 0:
                return comm.recv(source=1, tag=9)  # rank 1 never sends
            return None

        with pytest.raises(DeadlockError):
            run_spmd(program, 2)

    def test_unmatched_tag_deadlocks(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("x", 1, tag=1)
            else:
                return comm.recv(source=0, tag=2)

        with pytest.raises(DeadlockError):
            run_spmd(program, 2)

    def test_slow_compute_is_not_deadlock(self):
        import time

        def program(comm):
            if comm.rank == 0:
                time.sleep(0.7)  # slow, but not blocked
                comm.send("late", 1)
                return None
            return comm.recv(source=0)

        res = run_spmd(program, 2)
        assert res.values[1] == "late"

    def test_deadlock_timeout_is_removed(self):
        # The deprecated argument (timeout-based detection era) is gone
        # for good; passing it is a hard error, not a silent no-op.
        def program(comm):
            return comm.recv(source=(comm.rank + 1) % comm.size)

        with pytest.raises(TypeError, match="deadlock_timeout"):
            run_spmd(program, 2, deadlock_timeout=60.0)


class TestMessageSemantics:
    def test_copy_on_send_protects_receiver(self):
        def program(comm):
            if comm.rank == 0:
                data = np.arange(4.0)
                comm.send(data, 1)
                data[:] = -1.0  # mutate after send
                return None
            return comm.recv(source=0)

        res = run_spmd(program, 2, copy_messages=True)
        np.testing.assert_array_equal(res.values[1], np.arange(4.0))

    def test_no_copy_mode_shares(self):
        def program(comm):
            if comm.rank == 0:
                data = np.arange(4.0)
                comm.send(data, 1)
                data[:] = -1.0
                return None
            return comm.recv(source=0)

        res = run_spmd(program, 2, copy_messages=False)
        # Documented sharing semantics: the receiver observes mutation.
        np.testing.assert_array_equal(res.values[1], -np.ones(4))

    def test_structured_payloads_never_alias_sender(self):
        """Mutating a received payload (or the sender mutating after
        send) must never be visible on the other side, for every payload
        shape the library ships — the fastcopy isolation contract."""
        import dataclasses

        from repro.prefix import AffinePair

        @dataclasses.dataclass(frozen=True)
        class Record:
            tag: str
            arrays: tuple

        def make():
            pair = AffinePair(np.eye(2), np.ones((2, 1)))
            return {
                "pair": pair,
                "rec": Record("r", (np.arange(3.0), [np.zeros(2)])),
                "nested": [(np.full(2, 7.0),)],
            }

        def program(comm):
            if comm.rank == 0:
                payload = make()
                comm.send(payload, 1)
                payload["pair"].a[:] = -1.0  # sender mutates after send
                payload["rec"].arrays[0][:] = -1.0
                payload["nested"][0][0][:] = -1.0
                return None
            got = comm.recv(source=0)
            fresh = make()
            assert np.array_equal(got["pair"].a, fresh["pair"].a)
            assert np.array_equal(got["rec"].arrays[0], fresh["rec"].arrays[0])
            assert np.array_equal(got["nested"][0][0], fresh["nested"][0][0])
            return True

        res = run_spmd(program, 2, copy_messages=True)
        assert res.values[1] is True

    def test_payload_copy_counters(self):
        """Library payload types take the structural path; only foreign
        objects fall through to the counted deepcopy."""

        class Opaque:  # no copy(), not a dataclass
            __slots__ = ("x",)

            def __init__(self):
                self.x = 1

        def program(comm):
            if comm.rank == 0:
                comm.send(np.arange(3.0), 1)
                comm.send((np.eye(2), Opaque()), 1)
            else:
                comm.recv(source=0)
                comm.recv(source=0)

        res = run_spmd(program, 2, copy_messages=True)
        assert res.stats[0].payload_copies == 2
        assert res.stats[0].payload_deepcopies == 1
        assert res.stats[1].payload_copies == 0
        d = res.stats[0].to_dict()
        assert d["payload_copies"] == 2 and d["payload_deepcopies"] == 1

    def test_no_copy_mode_skips_counters(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(np.arange(3.0), 1)
            else:
                comm.recv(source=0)

        res = run_spmd(program, 2, copy_messages=False)
        assert res.stats[0].payload_copies == 0

    def test_comm_copy_kernel_timed(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(np.arange(1000.0), 1)
            else:
                comm.recv(source=0)

        res = run_spmd(program, 2, copy_messages=True, trace=True)
        assert res.traces[0].kernel_calls.get("comm.copy") == 1
        assert res.traces[0].kernel_wall["comm.copy"] >= 0.0
        assert "comm.copy" not in res.traces[1].kernel_calls


class TestVirtualTiming:
    def test_message_latency_ordering(self):
        cm = CostModel(latency=1e-3, inv_bandwidth=0.0, overhead=0.0)

        def program(comm):
            if comm.rank == 0:
                comm.send(b"x", 1)
            else:
                comm.recv(source=0)
            return comm.clock.now

        res = run_spmd(program, 2, cost_model=cm)
        assert res.values[1] >= 1e-3
        assert res.values[0] < 1e-4

    def test_compute_time_from_flops(self):
        cm = CostModel(flop_rate=1e6, latency=0.0, inv_bandwidth=0.0, overhead=0.0)

        def program(comm):
            record_flops("fake", 2_000_000)
            return comm.clock.now

        res = run_spmd(program, 1, cost_model=cm)
        assert res.values[0] == pytest.approx(2.0)

    def test_receiver_waits_for_senders_compute(self):
        cm = CostModel(flop_rate=1e6, latency=0.0, inv_bandwidth=0.0, overhead=0.0)

        def program(comm):
            if comm.rank == 0:
                record_flops("fake", 5_000_000)  # 5 modelled seconds
                comm.send(b"x", 1)
            else:
                comm.recv(source=0)
            return comm.clock.now

        res = run_spmd(program, 2, cost_model=cm)
        assert res.values[1] >= 5.0

    def test_virtual_time_deterministic(self):
        def program(comm):
            token = comm.rank
            for _ in range(3):
                token = comm.allreduce(token)
            return None

        times = {run_spmd(program, 4).virtual_time for _ in range(3)}
        assert len(times) == 1

    def test_stats_counts(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), 1)
            else:
                comm.recv(source=0)

        res = run_spmd(program, 2)
        assert res.stats[0].msgs_sent == 1
        assert res.stats[0].bytes_sent == 80
        assert res.stats[1].msgs_sent == 0
        assert res.total_msgs_sent == 1

    def test_advance_clock_explicit(self):
        def program(comm):
            comm.advance_clock(0.25)
            return comm.clock.now

        res = run_spmd(program, 1)
        assert res.values[0] == pytest.approx(0.25)


class TestSimulationResult:
    def test_summary_and_aggregates(self):
        def program(comm):
            record_flops("gemm", 100)
            comm.barrier()
            return comm.rank

        res = run_spmd(program, 3)
        assert res.nranks == 3
        assert res.total_flops == 300
        assert res.flops_by_kernel()["gemm"] == 300
        assert "P=3" in res.summary()
        assert res.value(2) == 2

    def test_comm_aborted_is_commerror(self):
        assert issubclass(CommAborted, CommError)
