"""Process-backend tests: parity, transport, diagnostics, fork safety.

The conformance matrix in ``test_comm_conformance.py`` pins the
Communicator API contract; this module covers what is specific to the
process backend (:mod:`repro.comm.mp`):

- **bitwise parity** — RD, ARD, SPIKE and block-cyclic-reduction
  solves return identical bits and identical modelled virtual times
  under both backends (the backend changes where code runs, never what
  it computes);
- **shared-memory transport** — pack/unpack round trips, zero-copy
  receive (unpacked arrays are views into the segment), segment
  lifecycle (released with the last reference, swept per pool);
- **observability interop** — one trace_id across worker processes,
  cross-process divergence detection, deadlock reports with the
  wait-for graph, log-record forwarding into the parent's sink;
- **failure paths** — rank exceptions, worker death, unconsumed
  messages, pool recovery after each;
- **fork safety** — module-level logging state re-resolves in a new
  process instead of writing through an inherited stream.
"""

from __future__ import annotations

import gc
import io
import json
import os

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.comm import shm
from repro.comm.mp import shutdown_pool
from repro.exceptions import (
    CommError,
    DeadlockError,
    SpmdDivergenceError,
    UnconsumedMessageWarning,
)
from repro.workloads import helmholtz_block_system, random_rhs

N, M, P, R = 32, 4, 4, 3


@pytest.fixture(scope="module", autouse=True)
def _teardown_pool():
    yield
    shutdown_pool()


# ---------------------------------------------------------------------------
# programs (module level: must be picklable for the process backend)
# ---------------------------------------------------------------------------

def prog_error_rank1(comm):
    if comm.rank == 1:
        raise ValueError("rank 1 exploded")
    return comm.allreduce(comm.rank)


def prog_cycle(comm):
    return comm.recv(source=(comm.rank + 1) % comm.size, tag=5)


def prog_divergent(comm):
    if comm.rank == 1:
        return comm.reduce(comm.rank, root=0)  # wrong collective  # repro: noqa[RC101]
    return comm.allreduce(comm.rank)


def prog_traced(comm):
    from repro.obs import span

    with span("work"):
        comm.send(np.arange(256.0), (comm.rank + 1) % comm.size, tag=2)
        return comm.recv(source=(comm.rank - 1) % comm.size, tag=2).sum()


def prog_unconsumed(comm):
    if comm.rank == 0:
        comm.send("orphan", 1, tag=9)
    return comm.allreduce(1)


def prog_worker_exit(comm):
    if comm.rank == 1:
        os._exit(3)
    return comm.allreduce(comm.rank)


def prog_logging(comm):
    from repro.obs.log import get_logger

    get_logger("mp.test").info("worker.hello", rank=comm.rank)
    return comm.rank


# ---------------------------------------------------------------------------
# bitwise parity across backends (acceptance criterion)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def system():
    matrix, _ = helmholtz_block_system(N, M)
    b = random_rhs(N, M, nrhs=R, seed=7)
    return matrix, b


def _both_backends(run):
    threads = run("threads")
    processes = run("processes")
    return threads, processes


class TestBitwiseParity:
    def test_rd_parity(self, system):
        from repro.core.distribute import distribute_matrix, distribute_rhs
        from repro.core.rd import rd_solve_spmd

        matrix, b = system

        def run(backend):
            chunks = distribute_matrix(matrix, P)
            d_chunks = distribute_rhs(b, P)
            return run_spmd(
                rd_solve_spmd, P, copy_messages=False,
                rank_args=[(c, d) for c, d in zip(chunks, d_chunks)],
                backend=backend)

        t, p = _both_backends(run)
        assert p.backend == "processes"
        for vt, vp in zip(t.values, p.values):
            np.testing.assert_array_equal(vt, vp)
        assert t.virtual_time == pytest.approx(p.virtual_time, rel=1e-12)

    def test_ard_parity(self, system):
        from repro.core.ard import ARDFactorization

        matrix, b = system

        def run(backend):
            fact = ARDFactorization(matrix, nranks=P, backend=backend)
            return fact, fact.solve(b)

        (ft, xt), (fp, xp) = _both_backends(run)
        np.testing.assert_array_equal(xt, xp)
        assert fp.factor_result.backend == "processes"
        assert (ft.factor_result.virtual_time
                == pytest.approx(fp.factor_result.virtual_time, rel=1e-12))
        assert (ft.last_solve_result.virtual_time
                == pytest.approx(fp.last_solve_result.virtual_time,
                                 rel=1e-12))

    def test_spike_parity(self, system):
        from repro.core.spike import SpikeFactorization

        matrix, b = system

        def run(backend):
            return SpikeFactorization(matrix, nranks=P,
                                      backend=backend).solve(b)

        xt, xp = _both_backends(run)
        np.testing.assert_array_equal(xt, xp)

    def test_bcyclic_parity(self, system):
        from repro.core.bcyclic import bcyclic_solve

        matrix, b = system

        def run(backend):
            return bcyclic_solve(matrix, b, backend=backend)

        (xt, rt), (xp, rp) = _both_backends(run)
        np.testing.assert_array_equal(xt, xp)
        assert rt.virtual_time == pytest.approx(rp.virtual_time, rel=1e-12)

    def test_solve_api_accepts_backend(self, system):
        from repro.core.api import solve

        matrix, b = system
        xt = solve(matrix, b, method="ard", nranks=P, backend="threads")
        xp = solve(matrix, b, method="ard", nranks=P, backend="processes")
        np.testing.assert_array_equal(xt, xp)

    def test_zero_copy_counters(self):
        from repro.core.ard import ARDFactorization

        # Big enough blocks/RHS that scan messages clear the shm
        # threshold (the tiny parity system rides in-band by design).
        matrix, _ = helmholtz_block_system(32, 8)
        b = random_rhs(32, 8, nrhs=32, seed=7)
        fact = ARDFactorization(matrix, nranks=P, backend="processes")
        fact.solve(b)
        stats = fact.last_solve_result.stats
        assert sum(s.shm_sends for s in stats) > 0
        assert sum(s.shm_bytes for s in stats) > 0
        assert sum(s.payload_deepcopies for s in stats) == 0
        assert sum(s.shm_sends for s in fact.factor_result.stats) > 0
        # The thread backend never touches shared memory.
        threads = ARDFactorization(matrix, nranks=P, backend="threads")
        assert all(s.shm_sends == 0 for s in threads.factor_result.stats)


# ---------------------------------------------------------------------------
# shared-memory transport
# ---------------------------------------------------------------------------

class TestShmTransport:
    def test_small_payload_stays_inline(self):
        packed, used_shm = shm.pack(("tiny", 42))
        assert not used_shm and packed.shm_name is None
        assert shm.unpack(packed) == ("tiny", 42)

    def test_large_array_round_trips_through_segment(self):
        arr = np.arange(8192, dtype=np.float64)
        packed, used_shm = shm.pack({"x": arr, "tag": "big"})
        assert used_shm and packed.shm_name is not None
        out = shm.unpack(packed)
        assert out["tag"] == "big"
        np.testing.assert_array_equal(out["x"], arr)

    def test_receive_is_zero_copy_view(self):
        arr = np.arange(4096, dtype=np.float64)
        packed, used_shm = shm.pack(arr)
        assert used_shm
        out = shm.unpack(packed)
        # The unpacked array is a view into the mapped segment, not a
        # copy: it must not own its data.
        assert not out.flags["OWNDATA"]
        assert out.base is not None

    def test_segment_released_with_last_reference(self):
        arr = np.arange(4096, dtype=np.float64)
        packed, _ = shm.pack(arr)
        name = packed.shm_name
        assert os.path.exists(f"/dev/shm/{name}")
        out = shm.unpack(packed)
        del out
        gc.collect()
        shm._drain_pending()
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_sweep_prefix_removes_leaked_segments(self):
        packed, _ = shm.pack(np.arange(4096, dtype=np.float64),
                             prefix=shm.segment_prefix(0xDEAD))
        assert os.path.exists(f"/dev/shm/{packed.shm_name}")
        shm.sweep_prefix(0xDEAD)
        assert not os.path.exists(f"/dev/shm/{packed.shm_name}")

    def test_no_segments_leak_after_jobs(self, system):
        run_spmd(prog_traced, 3, backend="processes")
        gc.collect()
        leaked = [f for f in os.listdir("/dev/shm")
                  if f.startswith("rshm")]
        assert leaked == []


# ---------------------------------------------------------------------------
# observability interop
# ---------------------------------------------------------------------------

class TestObservability:
    def test_one_trace_id_across_processes(self):
        result = run_spmd(prog_traced, 3, trace=True, backend="processes")
        assert result.trace_id is not None
        assert result.traces is not None and len(result.traces) == 3
        for trace in result.traces:
            assert trace.trace_id == result.trace_id
            assert any(s.name == "work" for s in trace.spans)
            assert any(e.name == "send" for e in trace.events)

    def test_divergent_collective_caught_cross_process(self):
        with pytest.raises(SpmdDivergenceError):
            run_spmd(prog_divergent, 3, verify=True, backend="processes")

    def test_deadlock_reported_with_wait_for_graph(self):
        with pytest.raises(DeadlockError) as exc_info:
            run_spmd(prog_cycle, 3, backend="processes")
        report = str(exc_info.value)
        assert "wait-for cycle" in report
        for rank in range(3):
            assert f"rank {rank}" in report

    def test_worker_logs_forwarded_to_parent_sink(self):
        from repro.obs.log import configure_logging, disable_logging

        buffer = io.StringIO()
        configure_logging(stream=buffer)
        try:
            run_spmd(prog_logging, 3, backend="processes")
        finally:
            disable_logging()
        records = [json.loads(line)
                   for line in buffer.getvalue().splitlines() if line]
        hello = [r for r in records if r.get("event") == "worker.hello"]
        assert sorted(r["rank"] for r in hello) == [0, 1, 2]


# ---------------------------------------------------------------------------
# failure paths
# ---------------------------------------------------------------------------

class TestFailurePaths:
    def test_rank_exception_propagates(self):
        with pytest.raises(ValueError, match="rank 1 exploded"):
            run_spmd(prog_error_rank1, 3, backend="processes")

    def test_pool_recovers_after_error(self):
        with pytest.raises(ValueError):
            run_spmd(prog_error_rank1, 3, backend="processes")
        result = run_spmd(prog_traced, 3, backend="processes")
        assert result.backend == "processes"

    def test_worker_death_is_actionable(self):
        with pytest.raises(CommError, match="died"):
            run_spmd(prog_worker_exit, 3, backend="processes")
        # The pool is rebuilt; the next job runs clean.
        result = run_spmd(prog_traced, 3, backend="processes")
        assert result.backend == "processes"

    def test_unconsumed_message_warns(self):
        with pytest.warns(UnconsumedMessageWarning, match="orphan|tag"):
            run_spmd(prog_unconsumed, 2, backend="processes")


# ---------------------------------------------------------------------------
# configuration and fork safety
# ---------------------------------------------------------------------------

class TestConfigAndForkSafety:
    def test_env_var_selects_backend(self, monkeypatch):
        from repro.config import ReproConfig

        monkeypatch.setenv("REPRO_COMM_BACKEND", "processes")
        assert ReproConfig().comm_backend == "processes"
        monkeypatch.delenv("REPRO_COMM_BACKEND")
        assert ReproConfig().comm_backend == "threads"

    def test_invalid_backend_rejected(self):
        from repro.exceptions import CommError, ConfigError

        with pytest.raises(ConfigError, match="comm_backend"):
            from repro.config import ReproConfig

            ReproConfig(comm_backend="carrier-pigeon")
        with pytest.raises(CommError, match="backend"):
            run_spmd(prog_traced, 2, backend="carrier-pigeon")

    def test_config_context_selects_backend(self, system):
        from repro.config import config_context

        with config_context(comm_backend="processes"):
            result = run_spmd(prog_traced, 2)
        assert result.backend == "processes"

    def test_log_state_resets_in_new_process(self, monkeypatch):
        # Simulate inheriting module state from a parent process: with a
        # foreign owner pid, the first logging call must forget the
        # inherited sink and re-resolve from the environment instead of
        # writing through the parent's stream.
        from repro.obs import log as log_mod

        buffer = io.StringIO()
        log_mod.configure_logging(stream=buffer)
        try:
            monkeypatch.setattr(log_mod, "_owner_pid", os.getpid() - 1)
            monkeypatch.delenv("REPRO_LOG", raising=False)
            assert log_mod.active_log() is None  # inherited sink dropped
            assert log_mod._owner_pid == os.getpid()
        finally:
            log_mod.disable_logging()

    def test_nranks_one_runs_in_process(self):
        result = run_spmd(prog_traced, 1, backend="processes")
        assert result.backend == "threads"  # documented: no spawn for P=1
