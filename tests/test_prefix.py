"""Tests for the parallel-prefix framework (semigroup, affine, scans)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import run_spmd
from repro.exceptions import ShapeError
from repro.prefix import (
    AffinePair,
    Monoid,
    affine_compose,
    check_associative,
    dist_scan_blelloch,
    dist_scan_kogge_stone,
    dist_scan_pipeline,
    seq_exclusive_scan,
    seq_inclusive_scan,
)


def concat(a, b):
    return a + b


class TestMonoid:
    def test_fold(self):
        m = Monoid(op=concat, identity="")
        assert m.fold(["a", "b", "c"]) == "abc"
        assert m.fold([]) == ""

    def test_check_associative_passes(self):
        check_associative(concat, ["a", "b", "c"])

    def test_check_associative_catches_violation(self):
        def subtract(a, b):
            return a - b

        with pytest.raises(AssertionError, match="not associative"):
            check_associative(subtract, [1, 2, 3])


class TestAffinePair:
    def test_identity_applies_as_noop(self, rng):
        ident = AffinePair.identity(4, 2)
        s = rng.standard_normal((4, 2))
        np.testing.assert_allclose(ident.apply(s), s)

    def test_compose_matches_sequential_application(self, rng):
        f = AffinePair(rng.standard_normal((3, 3)), rng.standard_normal((3, 2)))
        g = AffinePair(rng.standard_normal((3, 3)), rng.standard_normal((3, 2)))
        s = rng.standard_normal((3, 2))
        combined = affine_compose(f, g)  # f first, then g
        np.testing.assert_allclose(combined.apply(s), g.apply(f.apply(s)), atol=1e-12)

    def test_identity_neutral(self, rng):
        f = AffinePair(rng.standard_normal((3, 3)), rng.standard_normal((3, 1)))
        ident = AffinePair.identity(3, 1)
        assert affine_compose(ident, f).allclose(f)
        assert affine_compose(f, ident).allclose(f)

    def test_zero_width(self, rng):
        a = rng.standard_normal((3, 3))
        f = AffinePair(a, np.zeros((3, 0)))
        assert f.width == 0
        g = affine_compose(f, f)
        np.testing.assert_allclose(g.a, a @ a)

    def test_apply_vector_state(self, rng):
        f = AffinePair(rng.standard_normal((3, 3)), rng.standard_normal((3, 1)))
        s = rng.standard_normal(3)
        np.testing.assert_allclose(f.apply(s), f.a @ s + f.b[:, 0])

    def test_apply_width_mismatch(self, rng):
        f = AffinePair(np.eye(3), np.zeros((3, 2)))
        with pytest.raises(ShapeError):
            f.apply(rng.standard_normal((3, 5)))
        with pytest.raises(ShapeError):
            f.apply(rng.standard_normal(3))

    def test_compose_dim_mismatch(self):
        f = AffinePair(np.eye(2), np.zeros((2, 1)))
        g = AffinePair(np.eye(3), np.zeros((3, 1)))
        with pytest.raises(ShapeError):
            affine_compose(f, g)

    def test_validation(self):
        with pytest.raises(ShapeError):
            AffinePair(np.zeros((2, 3)), np.zeros((2, 1)))
        with pytest.raises(ShapeError):
            AffinePair(np.eye(2), np.zeros((3, 1)))

    def test_nbytes_and_copy(self, rng):
        f = AffinePair(np.eye(3), np.zeros((3, 2)))
        assert f.nbytes == 9 * 8 + 6 * 8
        dup = f.copy()
        dup.a[0, 0] = 99.0
        assert f.a[0, 0] == 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 4), st.integers(0, 3), st.integers(0, 999))
    def test_property_associative(self, dim, width, seed):
        rng = np.random.default_rng(seed)
        pairs = [
            AffinePair(rng.standard_normal((dim, dim)),
                       rng.standard_normal((dim, width)))
            for _ in range(3)
        ]
        left = affine_compose(affine_compose(pairs[0], pairs[1]), pairs[2])
        right = affine_compose(pairs[0], affine_compose(pairs[1], pairs[2]))
        assert left.allclose(right, rtol=1e-8, atol=1e-8)


class TestSequentialScans:
    def test_inclusive(self):
        assert seq_inclusive_scan(["a", "b", "c"], concat) == ["a", "ab", "abc"]

    def test_inclusive_empty(self):
        assert seq_inclusive_scan([], concat) == []

    def test_exclusive(self):
        assert seq_exclusive_scan(["a", "b", "c"], concat, "") == ["", "a", "ab"]

    @given(st.lists(st.integers(-10, 10), max_size=20))
    def test_property_inclusive_matches_partial_sums(self, items):
        import operator

        got = seq_inclusive_scan(items, operator.add)
        expected = list(np.cumsum(items)) if items else []
        assert got == expected


class TestDistributedScans:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
    def test_kogge_stone_matches_seq(self, p):
        def program(comm):
            return dist_scan_kogge_stone(comm, chr(97 + comm.rank), concat)

        res = run_spmd(program, p)
        expected = seq_inclusive_scan([chr(97 + r) for r in range(p)], concat)
        assert res.values == expected

    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7])
    def test_pipeline_matches_seq(self, p):
        def program(comm):
            return dist_scan_pipeline(comm, chr(97 + comm.rank), concat)

        res = run_spmd(program, p)
        expected = seq_inclusive_scan([chr(97 + r) for r in range(p)], concat)
        assert res.values == expected

    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_blelloch_matches_seq(self, p):
        def program(comm):
            return dist_scan_blelloch(comm, chr(97 + comm.rank), concat, "")

        res = run_spmd(program, p)
        expected = seq_inclusive_scan([chr(97 + r) for r in range(p)], concat)
        assert res.values == expected

    def test_blelloch_rejects_non_power_of_two(self):
        def program(comm):
            return dist_scan_blelloch(comm, "x", concat, "")

        with pytest.raises(ShapeError):
            run_spmd(program, 3)

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_scans_agree_on_affine_pairs(self, p):
        rng = np.random.default_rng(0)
        mats = rng.standard_normal((p, 4, 4)) / 2.0
        vecs = rng.standard_normal((p, 4, 2))

        def make_pair(r):
            return AffinePair(mats[r], vecs[r])

        def ks(comm):
            return dist_scan_kogge_stone(comm, make_pair(comm.rank), affine_compose)

        def bl(comm):
            return dist_scan_blelloch(
                comm, make_pair(comm.rank), affine_compose, AffinePair.identity(4, 2)
            )

        def pipe(comm):
            return dist_scan_pipeline(comm, make_pair(comm.rank), affine_compose)

        ks_res = run_spmd(ks, p).values
        bl_res = run_spmd(bl, p).values
        pipe_res = run_spmd(pipe, p).values
        seq = seq_inclusive_scan([make_pair(r) for r in range(p)], affine_compose)
        for r in range(p):
            assert ks_res[r].allclose(seq[r], rtol=1e-9, atol=1e-9)
            assert bl_res[r].allclose(seq[r], rtol=1e-9, atol=1e-9)
            assert pipe_res[r].allclose(seq[r], rtol=1e-9, atol=1e-9)

    def test_pipeline_message_count_linear(self):
        def program(comm):
            dist_scan_pipeline(comm, comm.rank, lambda a, b: a + b)

        res = run_spmd(program, 6)
        assert res.total_msgs_sent == 5
