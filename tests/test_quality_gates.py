"""Repository-wide quality gates.

Not about one module's behaviour: these tests enforce the documentation
and API-hygiene invariants a downstream user relies on — every public
callable documented, every subpackage importable, ``__all__`` names
real.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.comm",
    "repro.core",
    "repro.linalg",
    "repro.prefix",
    "repro.workloads",
    "repro.perfmodel",
    "repro.harness",
    "repro.obs",
    "repro.util",
    "repro.io",
    "repro.config",
    "repro.exceptions",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_importable(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} has no module docstring"


def _walk_modules():
    seen = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        seen.append(info.name)
    return seen


def test_all_modules_import_cleanly():
    for name in _walk_modules():
        importlib.import_module(name)


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_dunder_all_names_exist(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


def _public_callables(module):
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if callable(obj):
            yield symbol, obj


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_public_callables_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for symbol, obj in _public_callables(module):
        doc = inspect.getdoc(obj)
        if not doc or len(doc) < 10:
            undocumented.append(symbol)
    assert not undocumented, f"{name}: undocumented public API {undocumented}"


def test_public_classes_document_their_methods():
    """Every public method of the headline classes carries a docstring."""
    from repro.comm.communicator import Communicator
    from repro.core.ard import ARDFactorization
    from repro.core.spike import SpikeFactorization
    from repro.linalg.blocktridiag import BlockTridiagonalMatrix

    for cls in (Communicator, ARDFactorization, SpikeFactorization,
                BlockTridiagonalMatrix):
        for attr_name, attr in vars(cls).items():
            if attr_name.startswith("_"):
                continue
            if callable(attr) or isinstance(attr, property):
                target = attr.fget if isinstance(attr, property) else attr
                assert inspect.getdoc(target), (
                    f"{cls.__name__}.{attr_name} lacks a docstring"
                )


def test_tracing_disabled_overhead_under_5_percent():
    """The no-op span guard must cost < 5% on realistic kernel work.

    ``repro.obs.span`` is placed around every solver phase and stays in
    the hot path even when tracing is off, so its disabled cost must be
    negligible next to the work a phase does.  A phase span wraps at
    minimum on the order of a 128x128 matmul of block work; time a loop
    of those bare vs. wrapped in disabled spans.  BLAS/scheduler noise
    dwarfs the guard, so measure *paired* interleaved rounds and take
    the best (minimum) instrumented/plain ratio: one quiet pair reveals
    the true ratio, while a real guard regression inflates every pair.
    """
    import time

    import numpy as np

    from repro.obs import current_tracer, span

    assert current_tracer() is None  # guard: the cheap no-op path

    a = np.ones((128, 128))
    reps, rounds = 50, 15

    def plain():
        for _ in range(reps):
            a @ a

    def instrumented():
        for _ in range(reps):
            with span("kernel"):
                a @ a

    def timed(fn):
        t0 = time.perf_counter_ns()
        fn()
        return time.perf_counter_ns() - t0

    plain(), instrumented()  # warm up
    ratios = [timed(instrumented) / timed(plain) for _ in range(rounds)]
    best = min(ratios)
    assert best < 1.05, (
        f"disabled tracing overhead {best - 1:.1%} exceeds 5% in every "
        f"round ({reps} 128x128 matmuls per round, {rounds} paired rounds)"
    )


def test_logging_disabled_overhead_under_5_percent():
    """Unconfigured structured logging must cost < 5% on kernel work.

    ``repro.obs.log`` instrumentation sits on the service and API hot
    paths; with no sink configured every logger call must reduce to one
    module-global check.  Same paired-rounds methodology as the tracing
    gate above.
    """
    import time

    import numpy as np

    from repro.obs.log import active_log, disable_logging, get_logger

    disable_logging()
    assert active_log() is None  # guard: the cheap no-op path

    log = get_logger("gate")
    a = np.ones((128, 128))
    reps, rounds = 50, 15

    def plain():
        for _ in range(reps):
            a @ a

    def instrumented():
        for _ in range(reps):
            a @ a
            log.info("kernel.done", n=128)

    def timed(fn):
        t0 = time.perf_counter_ns()
        fn()
        return time.perf_counter_ns() - t0

    plain(), instrumented()  # warm up
    ratios = [timed(instrumented) / timed(plain) for _ in range(rounds)]
    best = min(ratios)
    assert best < 1.05, (
        f"disabled logging overhead {best - 1:.1%} exceeds 5% in every "
        f"round ({reps} 128x128 matmuls per round, {rounds} paired rounds)"
    )


def test_version_consistent():
    import tomllib

    with open("pyproject.toml", "rb") as fh:
        meta = tomllib.load(fh)
    assert meta["project"]["version"] == repro.__version__
