"""Tests for repro.util.partition (unit + property-based)."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ShapeError
from repro.util.partition import BlockPartition, chunk_bounds, chunk_sizes, owner_of


class TestChunkSizes:
    def test_even_split(self):
        assert chunk_sizes(12, 4) == [3, 3, 3, 3]

    def test_uneven_split(self):
        assert chunk_sizes(10, 3) == [4, 3, 3]

    def test_more_ranks_than_items(self):
        assert chunk_sizes(2, 5) == [1, 1, 0, 0, 0]

    def test_zero_items(self):
        assert chunk_sizes(0, 3) == [0, 0, 0]

    def test_negative_n(self):
        with pytest.raises(ShapeError):
            chunk_sizes(-1, 3)

    def test_nonpositive_p(self):
        with pytest.raises(ShapeError):
            chunk_sizes(3, 0)

    @given(st.integers(0, 500), st.integers(1, 64))
    def test_sizes_sum_to_n(self, n, p):
        assert sum(chunk_sizes(n, p)) == n

    @given(st.integers(0, 500), st.integers(1, 64))
    def test_sizes_balanced(self, n, p):
        sizes = chunk_sizes(n, p)
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)


class TestChunkBounds:
    def test_bounds_example(self):
        assert chunk_bounds(10, 3, 0) == (0, 4)
        assert chunk_bounds(10, 3, 1) == (4, 7)
        assert chunk_bounds(10, 3, 2) == (7, 10)

    def test_rank_out_of_range(self):
        with pytest.raises(ShapeError):
            chunk_bounds(10, 3, 3)
        with pytest.raises(ShapeError):
            chunk_bounds(10, 3, -1)

    @given(st.integers(0, 300), st.integers(1, 32))
    def test_bounds_tile_range(self, n, p):
        covered = []
        for r in range(p):
            lo, hi = chunk_bounds(n, p, r)
            assert 0 <= lo <= hi <= n
            covered.extend(range(lo, hi))
        assert covered == list(range(n))

    @given(st.integers(0, 300), st.integers(1, 32))
    def test_bounds_match_sizes(self, n, p):
        sizes = chunk_sizes(n, p)
        for r in range(p):
            lo, hi = chunk_bounds(n, p, r)
            assert hi - lo == sizes[r]


class TestOwnerOf:
    def test_example(self):
        assert owner_of(10, 3, 0) == 0
        assert owner_of(10, 3, 3) == 0
        assert owner_of(10, 3, 4) == 1
        assert owner_of(10, 3, 9) == 2

    def test_out_of_range(self):
        with pytest.raises(ShapeError):
            owner_of(10, 3, 10)
        with pytest.raises(ShapeError):
            owner_of(10, 3, -1)

    @given(st.integers(1, 300), st.integers(1, 32), st.data())
    def test_owner_consistent_with_bounds(self, n, p, data):
        idx = data.draw(st.integers(0, n - 1))
        r = owner_of(n, p, idx)
        lo, hi = chunk_bounds(n, p, r)
        assert lo <= idx < hi


class TestBlockPartition:
    def test_basic(self):
        part = BlockPartition(nblocks=10, nranks=3)
        assert part.sizes() == [4, 3, 3]
        assert part.bounds(1) == (4, 7)
        assert part.size(2) == 3
        assert part.owner(6) == 1
        assert part.local_index(6) == (1, 2)

    def test_iter(self):
        part = BlockPartition(nblocks=5, nranks=2)
        assert list(part) == [(0, 3), (3, 5)]

    def test_nonempty_ranks(self):
        part = BlockPartition(nblocks=2, nranks=5)
        assert part.nonempty_ranks() == [0, 1]
        assert part.last_nonempty_rank() == 1

    def test_last_nonempty_empty_partition(self):
        part = BlockPartition(nblocks=0, nranks=3)
        with pytest.raises(ShapeError):
            part.last_nonempty_rank()

    def test_scatter(self):
        part = BlockPartition(nblocks=5, nranks=2)
        assert part.scatter("abcde") == [["a", "b", "c"], ["d", "e"]]

    def test_scatter_wrong_length(self):
        part = BlockPartition(nblocks=5, nranks=2)
        with pytest.raises(ShapeError):
            part.scatter("abc")

    def test_validation(self):
        with pytest.raises(ShapeError):
            BlockPartition(nblocks=-1, nranks=2)
        with pytest.raises(ShapeError):
            BlockPartition(nblocks=3, nranks=0)

    @given(st.integers(1, 200), st.integers(1, 16))
    def test_last_nonempty_owns_last_row(self, n, p):
        part = BlockPartition(nblocks=n, nranks=p)
        last = part.last_nonempty_rank()
        lo, hi = part.bounds(last)
        assert hi == n and lo < n
