"""Tests for repro.check: the AST lint pass and the runtime verifier.

Static layer: every rule fires on a seeded-bug fixture, stays quiet on
the equivalent clean code, honours ``# repro: noqa[...]``, and the
shipped ``src/`` tree lints clean (the same gate CI enforces).

Dynamic layer: adversarial SPMD programs — divergent collectives, a
send with no matching receive, a true receive cycle — must produce the
precise diagnostic (ranks, ops, tags) under both ``verify=True`` and
default mode, never a generic timeout; and real solves stay clean
under verification.
"""

import pathlib
import textwrap
import time
import warnings

import pytest

from repro.check import RULES, lint_paths, lint_source
from repro.check.__main__ import main as check_main
from repro.check.verifier import SpmdVerifier
from repro.comm import run_spmd
from repro.exceptions import (
    DeadlockError,
    SpmdDivergenceError,
    UnconsumedMessageError,
    UnconsumedMessageWarning,
)

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"


def rule_ids(findings):
    return [f.rule_id for f in findings]


def lint_snippet(snippet, path="pkg/module.py"):
    return lint_source(textwrap.dedent(snippet), path)


class TestRankConditionalCollective:
    def test_collective_in_rank_branch_flagged(self):
        findings = lint_snippet(
            """
            def program(comm):
                if comm.rank == 0:
                    comm.bcast(1, root=0)
            """
        )
        assert rule_ids(findings) == ["RC101"]
        assert "bcast" in findings[0].message

    def test_else_branch_flagged(self):
        findings = lint_snippet(
            """
            def program(comm):
                if comm.rank == 0:
                    pass
                else:
                    comm.barrier()
            """
        )
        assert rule_ids(findings) == ["RC101"]

    def test_local_rank_variable_flagged(self):
        findings = lint_snippet(
            """
            def program(comm):
                rank = comm.rank
                if rank < 2:
                    subcomm = comm.split(0)
                    subcomm.allreduce(rank)
            """
        )
        assert rule_ids(findings) == ["RC101", "RC101"]

    def test_unconditional_collective_clean(self):
        findings = lint_snippet(
            """
            def program(comm):
                token = comm.allreduce(comm.rank)
                if comm.rank == 0:
                    print(token)
                return comm.scan(token)
            """
        )
        assert findings == []

    def test_functools_reduce_not_flagged(self):
        findings = lint_snippet(
            """
            import functools

            def total(comm, items):
                if comm.rank == 0:
                    return functools.reduce(lambda a, b: a + b, items)
            """
        )
        assert findings == []

    def test_non_rank_condition_clean(self):
        findings = lint_snippet(
            """
            def program(comm, big):
                if big:
                    comm.barrier()
            """
        )
        assert findings == []


class TestUnwaitedRequest:
    def test_discarded_isend_flagged(self):
        findings = lint_snippet(
            """
            def program(comm):
                comm.isend(1, 0)
            """
        )
        assert rule_ids(findings) == ["RC102"]

    def test_unused_irecv_handle_flagged(self):
        findings = lint_snippet(
            """
            def program(comm):
                req = comm.irecv(source=1)
                return 42
            """
        )
        assert rule_ids(findings) == ["RC102"]
        assert "req" in findings[0].message

    def test_waited_request_clean(self):
        findings = lint_snippet(
            """
            def program(comm):
                req = comm.irecv(source=1)
                return req.wait()
            """
        )
        assert findings == []

    def test_waitall_list_clean(self):
        findings = lint_snippet(
            """
            def program(comm, Request):
                reqs = [comm.irecv(source=s) for s in (1, 2)]
                return Request.waitall(reqs)
            """
        )
        assert findings == []

    def test_tuple_unpacked_handles_waited_clean(self):
        findings = lint_snippet(
            """
            def program(comm):
                ra, rb = comm.isend(1, 0), comm.irecv(source=0)
                ra.wait()
                return rb.wait()
            """
        )
        assert findings == []

    def test_tuple_unpacked_handle_never_waited_flagged(self):
        findings = lint_snippet(
            """
            def program(comm):
                ra, rb = comm.isend(1, 0), comm.irecv(source=0)
                ra.wait()
                return None
            """
        )
        assert rule_ids(findings) == ["RC102"]
        assert "rb" in findings[0].message

    def test_attribute_assigned_handle_waited_clean(self):
        findings = lint_snippet(
            """
            class Exchange:
                def start(self, comm):
                    self.req = comm.irecv(source=1)

                def finish(self):
                    return self.req.wait()
            """
        )
        assert findings == []

    def test_attribute_assigned_handle_never_waited_flagged(self):
        findings = lint_snippet(
            """
            class Exchange:
                def start(self, comm):
                    self.req = comm.irecv(source=1)

                def finish(self):
                    return None
            """
        )
        assert rule_ids(findings) == ["RC102"]


class TestRawThreadPrimitive:
    SNIPPET = """
        import threading

        guard = threading.Lock()
        """

    def test_outside_allowlist_flagged(self):
        findings = lint_snippet(self.SNIPPET, path="src/repro/core/rd.py")
        assert rule_ids(findings) == ["RC103"]
        assert "threading.Lock" in findings[0].message

    @pytest.mark.parametrize("part", ["comm", "service", "obs", "check"])
    def test_audited_layers_allowed(self, part):
        findings = lint_snippet(
            self.SNIPPET, path=f"src/repro/{part}/runtime.py"
        )
        assert findings == []

    def test_from_import_flagged(self):
        findings = lint_snippet(
            """
            from threading import Thread

            def spawn(fn):
                return Thread(target=fn)
            """,
            path="src/repro/core/rd.py",
        )
        assert rule_ids(findings) == ["RC103"]

    def test_thread_local_allowed(self):
        findings = lint_snippet(
            """
            import threading

            _state = threading.local()
            """,
            path="src/repro/core/rd.py",
        )
        assert findings == []


class TestAllDrift:
    def test_missing_public_def_flagged(self):
        findings = lint_snippet(
            """
            __all__ = ["shipped"]

            def shipped():
                pass

            def forgotten():
                pass
            """
        )
        assert rule_ids(findings) == ["RC104"]
        assert "forgotten" in findings[0].message

    def test_undefined_export_flagged(self):
        findings = lint_snippet(
            """
            __all__ = ["ghost"]
            """
        )
        assert rule_ids(findings) == ["RC104"]
        assert "ghost" in findings[0].message

    def test_lazy_getattr_exports_allowed(self):
        findings = lint_snippet(
            """
            __all__ = ["lazy"]

            def __getattr__(name):
                raise AttributeError(name)
            """
        )
        assert findings == []

    def test_private_and_imported_names_ignored(self):
        findings = lint_snippet(
            """
            import os
            from sys import path

            __all__ = ["public"]

            def public():
                pass

            def _internal():
                pass
            """
        )
        assert findings == []


class TestSimpleRules:
    def test_bare_except_flagged(self):
        findings = lint_snippet(
            """
            def f():
                try:
                    return 1
                except:
                    return 2
            """
        )
        assert rule_ids(findings) == ["RC105"]

    def test_typed_except_clean(self):
        findings = lint_snippet(
            """
            def f():
                try:
                    return 1
                except ValueError:
                    return 2
            """
        )
        assert findings == []

    def test_mutable_default_flagged(self):
        findings = lint_snippet(
            """
            def f(items=[], table={}, seen=set()):
                return items, table, seen
            """
        )
        assert rule_ids(findings) == ["RC106", "RC106", "RC106"]

    def test_none_default_clean(self):
        findings = lint_snippet(
            """
            def f(items=None, n=3, name="x"):
                return items
            """
        )
        assert findings == []

    def test_syntax_error_reported(self):
        findings = lint_source("def f(:\n", "broken.py")
        assert rule_ids(findings) == ["RC100"]


class TestBarePrint:
    def test_flagged_in_library_code(self):
        findings = lint_snippet(
            "def f():\n    print('debugging')\n",
            path="src/repro/core/rd.py",
        )
        assert rule_ids(findings) == ["RC107"]
        assert "repro.obs.log" in findings[0].message

    def test_main_module_exempt(self):
        findings = lint_snippet(
            "print('usage: ...')\n", path="src/repro/harness/__main__.py"
        )
        assert findings == []

    def test_util_tables_exempt(self):
        findings = lint_snippet(
            "print('| a | b |')\n", path="src/repro/util/tables.py"
        )
        assert findings == []

    def test_non_repro_tree_exempt(self):
        assert lint_snippet("print('hi')\n", path="scripts/tool.py") == []
        assert lint_source("print('hi')\n") == []  # default <string> buffer

    def test_method_named_print_clean(self):
        findings = lint_snippet(
            "def f(report):\n    report.print()\n",
            path="src/repro/core/rd.py",
        )
        assert findings == []

    def test_noqa_suppresses(self):
        findings = lint_snippet(
            "print('on purpose')  # repro: noqa[RC107]\n",
            path="src/repro/obs/log.py",
        )
        assert findings == []


class TestUnenteredSpan:
    def test_bare_span_call_flagged(self):
        findings = lint_snippet(
            """
            from repro.obs import span

            def f():
                span("factor")
                return 1
            """
        )
        assert rule_ids(findings) == ["RC108"]
        assert "never" in findings[0].message
        assert "with span(...)" in findings[0].message

    def test_bare_kernel_time_flagged(self):
        findings = lint_snippet(
            """
            from repro.obs.tracer import kernel_time

            def f():
                kernel_time("lu_batched")
            """
        )
        assert rule_ids(findings) == ["RC108"]

    def test_tracer_attribute_call_flagged(self):
        findings = lint_snippet(
            """
            def f(ctx):
                ctx.tracer.span("solve")
            """
        )
        assert rule_ids(findings) == ["RC108"]

    def test_with_statement_clean(self):
        findings = lint_snippet(
            """
            from repro.obs import span

            def f():
                with span("factor"):
                    return 1
            """
        )
        assert findings == []

    def test_assigned_span_clean(self):
        # Storing the manager for a later ``with`` is deliberate.
        findings = lint_snippet(
            """
            from repro.obs import span

            def f():
                cm = span("factor")
                with cm:
                    return 1
            """
        )
        assert findings == []

    def test_unrelated_span_attribute_clean(self):
        findings = lint_snippet(
            """
            def f(layout):
                layout.span(3)
            """
        )
        assert findings == []

    def test_local_span_function_clean(self):
        # ``span`` not imported from an obs module stays out of scope.
        findings = lint_snippet(
            """
            def span(name):
                return name

            def f():
                span("x")
            """
        )
        assert findings == []

    def test_noqa_suppresses(self):
        findings = lint_snippet(
            """
            from repro.obs import span

            def f():
                span("factor")  # repro: noqa[RC108]
            """
        )
        assert findings == []


class TestSuppression:
    def test_targeted_noqa(self):
        findings = lint_snippet(
            """
            def program(comm):
                if comm.rank == 0:
                    comm.bcast(1, root=0)  # repro: noqa[RC101]
            """
        )
        assert findings == []

    def test_blanket_noqa(self):
        findings = lint_snippet(
            """
            def f(items=[]):  # repro: noqa
                return items
            """
        )
        assert findings == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        findings = lint_snippet(
            """
            def f(items=[]):  # repro: noqa[RC101]
                return items
            """
        )
        assert rule_ids(findings) == ["RC106"]

    def test_multi_code_noqa_suppresses_both(self):
        findings = lint_snippet(
            """
            def program(comm, items=[]):  # repro: noqa[RC106, RC101]
                if comm.rank == 0:
                    comm.barrier()  # repro: noqa[RC101,RC107]
                return items
            """
        )
        assert findings == []

    def test_multi_code_noqa_still_misses_unlisted_rule(self):
        findings = lint_snippet(
            """
            def program(comm, items=[]):  # repro: noqa[RC101, RC107]
                if comm.rank == 0:
                    comm.barrier()  # repro: noqa[RC101]
                return items
            """
        )
        assert rule_ids(findings) == ["RC106"]


class TestTreeAndCli:
    def test_shipped_tree_lints_clean(self):
        findings = lint_paths([SRC])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_cli_clean_file_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "clean.py"
        f.write_text("def f():\n    return 1\n")
        assert check_main(["lint", str(f)]) == 0

    @pytest.mark.parametrize(
        "rule_id,snippet",
        [
            ("RC100", "def f(:\n"),
            ("RC101", "def p(comm):\n    if comm.rank:\n        comm.barrier()\n"),
            ("RC102", "def p(comm):\n    comm.isend(1, 0)\n"),
            ("RC103", "import threading\nx = threading.Lock()\n"),
            ("RC104", "__all__ = ['ghost']\n"),
            ("RC105", "def f():\n    try:\n        pass\n    except:\n        pass\n"),
            ("RC106", "def f(x=[]):\n    return x\n"),
            ("RC108", "from repro.obs import span\nspan('kernel')\n"),
        ],
    )
    def test_cli_seeded_bug_exits_nonzero(self, rule_id, snippet, tmp_path, capsys):
        f = tmp_path / "seeded.py"
        f.write_text(snippet)
        assert check_main(["lint", str(f)]) == 1
        assert rule_id in capsys.readouterr().out

    def test_cli_json_format(self, tmp_path, capsys):
        import json

        f = tmp_path / "seeded.py"
        f.write_text("def f(x=[]):\n    return x\n")
        assert check_main(["lint", "--format", "json", str(f)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule_id"] == "RC106"
        assert payload[0]["line"] == 1

    def test_cli_rules_catalog(self, capsys):
        assert check_main(["rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out


def diverging_program(comm):
    """Rank 0 enters bcast while everyone else enters allreduce."""
    if comm.rank == 0:
        return comm.bcast(0, root=0)  # repro: noqa[RC101] - seeded bug
    return comm.allreduce(1)


class TestCollectiveDivergence:
    def test_verify_reports_first_divergent_collective(self):
        with pytest.raises(SpmdDivergenceError) as exc_info:
            run_spmd(diverging_program, 2, verify=True)
        message = str(exc_info.value)
        assert "collective #0" in message
        assert "bcast" in message and "allreduce" in message
        assert "rank 0" in message and "rank 1" in message
        assert "digest" in message

    def test_default_mode_reports_precise_deadlock(self):
        # Without the verifier the mismatch surfaces as a deadlock — but
        # an exact, named one (rank, op, tag, unmatched messages), not a
        # generic timeout.
        with pytest.raises(DeadlockError) as exc_info:
            run_spmd(diverging_program, 2)
        message = str(exc_info.value)
        assert "rank 1" in message
        assert "allreduce" in message
        assert "tag" in message
        assert "unmatched message" in message

    def test_root_mismatch_is_divergence(self):
        def program(comm):
            root = comm.rank  # every rank names a different root
            return comm.bcast(0, root=root)

        with pytest.raises(SpmdDivergenceError) as exc_info:
            run_spmd(program, 2, verify=True)
        assert "root" in str(exc_info.value)

    def test_extra_collective_on_one_rank(self):
        def program(comm):
            comm.barrier()
            if comm.rank == 1:
                comm.barrier()  # repro: noqa[RC101] - seeded bug
            return comm.allreduce(comm.rank)

        with pytest.raises(SpmdDivergenceError) as exc_info:
            run_spmd(program, 2, verify=True)
        message = str(exc_info.value)
        assert "collective #1" in message
        assert "barrier" in message and "allreduce" in message

    def test_env_var_enables_verification(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        with pytest.raises(SpmdDivergenceError):
            run_spmd(diverging_program, 2)

    def test_env_var_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "0")
        with pytest.raises(DeadlockError):
            run_spmd(diverging_program, 2)

    def test_clean_program_passes_all_collectives(self):
        def program(comm):
            comm.barrier()
            items = comm.allgather(comm.rank)
            comm.scatter(items, root=1)
            comm.alltoall(items)
            comm.reduce(comm.rank, root=1)
            comm.exscan(comm.rank)
            return comm.scan(comm.rank)

        res = run_spmd(program, 4, verify=True)
        assert res.values == [0, 1, 3, 6]

    def test_split_communicators_verify_independently(self):
        # Different sub-communicators legitimately run different
        # collective sequences; comm_key isolation must not call that
        # divergence.
        def program(comm):
            sub = comm.split(comm.rank % 2)
            if comm.rank % 2 == 0:
                sub.barrier()
                return sub.allreduce(comm.rank)
            return sub.allgather(comm.rank)

        res = run_spmd(program, 4, verify=True)
        assert res.values[0] == res.values[2] == 2
        assert res.values[1] == res.values[3] == [1, 3]

    def test_dup_verifies_clean(self):
        def program(comm):
            other = comm.dup()
            return other.allreduce(1)

        res = run_spmd(program, 3, verify=True)
        assert res.values == [3, 3, 3]


class TestExactDeadlockDetection:
    def test_cycle_is_named(self):
        def program(comm):
            nxt = (comm.rank + 1) % comm.size
            val = comm.recv(source=nxt, tag=3)
            comm.send(val, nxt, tag=3)

        for verify in (False, True):
            with pytest.raises(DeadlockError) as exc_info:
                run_spmd(program, 3, verify=verify)
            message = str(exc_info.value)
            assert "wait-for cycle" in message
            assert "rank 0 -> " in message or "rank 0" in message
            assert "tag 3" in message

    def test_detection_is_immediate_not_timeout_based(self):
        def program(comm):
            return comm.recv(source=(comm.rank + 1) % comm.size, tag=5)

        start = time.monotonic()
        with pytest.raises(DeadlockError):
            run_spmd(program, 2)
        assert time.monotonic() - start < 5.0

    def test_mismatched_tag_names_pending_message(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("x", 1, tag=1)
            else:
                return comm.recv(source=0, tag=2)

        for verify in (False, True):
            with pytest.raises(DeadlockError) as exc_info:
                run_spmd(program, 2, verify=verify)
            message = str(exc_info.value)
            assert "tag 2" in message  # what rank 1 waits for
            assert "tag 1" in message  # the unmatched message in its inbox
            assert "rank 0 -> rank 1" in message

    def test_long_compute_phase_is_not_deadlock(self):
        # The false-positive fix: a rank grinding through local work is
        # live, so the blocked ranks must keep waiting no matter how
        # long the compute takes — there is no stall window to outlast.
        def program(comm):
            if comm.rank == 0:
                time.sleep(0.6)
                comm.send("late", 1)
                comm.send("late", 2)
                return None
            return comm.recv(source=0)

        res = run_spmd(program, 3)
        assert res.values[1] == res.values[2] == "late"

    def test_wildcard_receive_deadlock_reported(self):
        def program(comm):
            return comm.recv()  # ANY_SOURCE, nobody ever sends

        with pytest.raises(DeadlockError) as exc_info:
            run_spmd(program, 2)
        assert "any rank" in str(exc_info.value)


class TestFinalizeSweep:
    def test_unreceived_message_is_error_under_verify(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("x", 1, tag=7)

        with pytest.raises(UnconsumedMessageError) as exc_info:
            run_spmd(program, 2, verify=True)
        message = str(exc_info.value)
        assert "rank 0 -> rank 1" in message
        assert "tag 7" in message

    def test_unreceived_message_warns_in_default_mode(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("x", 1, tag=7)

        with pytest.warns(UnconsumedMessageWarning, match="tag 7"):
            run_spmd(program, 2)

    def test_clean_program_no_warning(self):
        def program(comm):
            comm.send(comm.rank, (comm.rank + 1) % comm.size, tag=1)
            return comm.recv(tag=1)

        with warnings.catch_warnings():
            warnings.simplefilter("error", UnconsumedMessageWarning)
            res = run_spmd(program, 2)
        assert sorted(res.values) == [0, 1]


class TestSpmdVerifierUnit:
    def test_schedule_slots_are_garbage_collected(self):
        verifier = SpmdVerifier(2)
        for index in range(100):
            assert verifier.record_collective(0, ("world",), "barrier", None, 2) == index
            assert verifier.record_collective(1, ("world",), "barrier", None, 2) == index
        assert verifier._pending == {}
        assert verifier.collectives_checked == 200

    def test_digest_tracks_sequence(self):
        verifier = SpmdVerifier(2)
        verifier.record_collective(0, ("world",), "barrier", None, 2)
        verifier.record_collective(1, ("world",), "barrier", None, 2)
        assert verifier.digest(0) == verifier.digest(1)
        verifier.record_collective(0, ("world",), "scan", None, 2)
        assert verifier.digest(0) != verifier.digest(1)


class TestVerifiedSolves:
    def test_ard_solve_clean_under_verification(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        from repro import solve
        from repro.workloads import absorbing_helmholtz_system, random_rhs

        matrix, _ = absorbing_helmholtz_system(16, 3)
        b = random_rhs(16, 3, nrhs=4, seed=1).astype(matrix.dtype)
        x = solve(matrix, b, method="ard", nranks=4)
        assert matrix.residual(x, b) < 1e-8

    def test_rd_solve_clean_under_verification(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        from repro import solve
        from repro.workloads import absorbing_helmholtz_system, random_rhs

        matrix, _ = absorbing_helmholtz_system(16, 3)
        b = random_rhs(16, 3, nrhs=1, seed=3).astype(matrix.dtype)
        x = solve(matrix, b, method="rd", nranks=4)
        assert matrix.residual(x, b) < 1e-8
