"""Tests for the BlockTridiagonalMatrix type."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings, strategies as st

from repro.exceptions import ShapeError
from repro.linalg.blocktridiag import (
    BlockTridiagonalMatrix,
    reshape_rhs,
    restore_rhs_shape,
)


def random_btm(rng, n, m):
    lower = rng.standard_normal((n - 1, m, m)) if n > 1 else None
    diag = rng.standard_normal((n, m, m)) + m * np.eye(m)
    upper = rng.standard_normal((n - 1, m, m)) if n > 1 else None
    return BlockTridiagonalMatrix(lower, diag, upper)


class TestConstruction:
    def test_basic(self, rng):
        mat = random_btm(rng, 4, 3)
        assert mat.nblocks == 4
        assert mat.block_size == 3
        assert mat.shape == (12, 12)
        assert mat.dtype == np.float64

    def test_single_block_without_offdiag(self, rng):
        mat = BlockTridiagonalMatrix(None, rng.standard_normal((1, 2, 2)), None)
        assert mat.nblocks == 1
        assert mat.lower.shape == (0, 2, 2)

    def test_single_block_partial_none_rejected(self, rng):
        diag = rng.standard_normal((1, 2, 2))
        with pytest.raises(ShapeError):
            BlockTridiagonalMatrix(np.zeros((0, 2, 2)), diag, None)

    def test_offdiag_none_multi_block_rejected(self, rng):
        with pytest.raises(ShapeError):
            BlockTridiagonalMatrix(None, rng.standard_normal((2, 2, 2)), None)

    def test_shape_mismatch_rejected(self, rng):
        diag = rng.standard_normal((3, 2, 2))
        bad = rng.standard_normal((1, 2, 2))
        good = rng.standard_normal((2, 2, 2))
        with pytest.raises(ShapeError):
            BlockTridiagonalMatrix(bad, diag, good)
        with pytest.raises(ShapeError):
            BlockTridiagonalMatrix(good, diag, bad)

    def test_nonsquare_rejected(self, rng):
        with pytest.raises(ShapeError):
            BlockTridiagonalMatrix(None, rng.standard_normal((1, 2, 3)), None)

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            BlockTridiagonalMatrix(None, np.zeros((0, 2, 2)), None)

    def test_copy_semantics(self, rng):
        diag = rng.standard_normal((1, 2, 2))
        mat = BlockTridiagonalMatrix(None, diag, None, copy=True)
        diag[:] = 0.0
        assert not np.allclose(mat.diag, 0.0)

    def test_integer_input_promoted_to_float(self):
        mat = BlockTridiagonalMatrix(None, np.ones((1, 2, 2), dtype=int), None)
        assert mat.dtype.kind == "f"

    def test_block_identity(self):
        eye = BlockTridiagonalMatrix.block_identity(3, 2)
        np.testing.assert_array_equal(eye.to_dense(), np.eye(6))


class TestFromDense:
    def test_roundtrip(self, rng):
        mat = random_btm(rng, 4, 3)
        back = BlockTridiagonalMatrix.from_dense(mat.to_dense(), 3)
        assert back.allclose(mat)

    def test_rejects_off_band(self):
        a = np.eye(6)
        a[0, 5] = 1.0  # outside the block tridiagonal band
        with pytest.raises(ShapeError, match="outside"):
            BlockTridiagonalMatrix.from_dense(a, 2)

    def test_rejects_bad_order(self):
        with pytest.raises(ShapeError):
            BlockTridiagonalMatrix.from_dense(np.eye(5), 2)


class TestBlockAccess:
    def test_band_blocks(self, rng):
        mat = random_btm(rng, 3, 2)
        np.testing.assert_array_equal(mat.block(1, 1), mat.diag[1])
        np.testing.assert_array_equal(mat.block(2, 1), mat.lower[1])
        np.testing.assert_array_equal(mat.block(0, 1), mat.upper[0])

    def test_off_band_zero(self, rng):
        mat = random_btm(rng, 4, 2)
        np.testing.assert_array_equal(mat.block(0, 3), np.zeros((2, 2)))

    def test_out_of_range(self, rng):
        mat = random_btm(rng, 2, 2)
        with pytest.raises(ShapeError):
            mat.block(2, 0)

    def test_block_rows(self, rng):
        mat = random_btm(rng, 3, 2)
        rows = list(mat.block_rows())
        assert rows[0][0] is None and rows[-1][2] is None
        np.testing.assert_array_equal(rows[1][0], mat.lower[0])
        np.testing.assert_array_equal(rows[1][2], mat.upper[1])


class TestMatvec:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 6), st.integers(1, 4), st.integers(1, 3),
           st.integers(0, 999))
    def test_matches_dense(self, n, m, r, seed):
        rng = np.random.default_rng(seed)
        mat = random_btm(rng, n, m)
        x = rng.standard_normal((n, m, r))
        dense = mat.to_dense() @ x.reshape(n * m, r)
        np.testing.assert_allclose(
            mat.matvec(x).reshape(n * m, r), dense, atol=1e-10
        )

    def test_layout_roundtrip(self, rng):
        mat = random_btm(rng, 3, 2)
        flat = rng.standard_normal(6)
        assert mat.matvec(flat).shape == (6,)
        two_d = rng.standard_normal((6, 4))
        assert mat.matvec(two_d).shape == (6, 4)
        blocks = rng.standard_normal((3, 2))
        assert mat.matvec(blocks).shape == (3, 2)

    def test_bad_layout(self, rng):
        mat = random_btm(rng, 3, 2)
        with pytest.raises(ShapeError):
            mat.matvec(np.zeros(7))

    def test_residual(self, rng):
        mat = random_btm(rng, 3, 2)
        b = rng.standard_normal((3, 2, 1))
        x = np.linalg.solve(mat.to_dense(), b.reshape(6, 1)).reshape(3, 2, 1)
        assert mat.residual(x, b) < 1e-12
        assert mat.residual(np.zeros_like(x), b) == pytest.approx(1.0)


class TestExports:
    def test_banded_solve_agrees(self, rng):
        mat = random_btm(rng, 4, 3)
        b = rng.standard_normal(12)
        ab, bw = mat.to_banded()
        x = scipy.linalg.solve_banded((bw, bw), ab, b)
        np.testing.assert_allclose(mat.to_dense() @ x, b, atol=1e-9)

    def test_sparse_matches_dense(self, rng):
        mat = random_btm(rng, 3, 2)
        np.testing.assert_allclose(mat.to_sparse().toarray(), mat.to_dense())

    def test_transpose(self, rng):
        mat = random_btm(rng, 4, 2)
        np.testing.assert_allclose(mat.transpose().to_dense(), mat.to_dense().T)

    def test_copy_and_allclose(self, rng):
        mat = random_btm(rng, 3, 2)
        dup = mat.copy()
        assert mat.allclose(dup)
        dup.diag[0, 0, 0] += 1.0
        assert not mat.allclose(dup)

    def test_allclose_shape_mismatch(self, rng):
        assert not random_btm(rng, 3, 2).allclose(random_btm(rng, 2, 2))

    def test_nbytes(self, rng):
        assert random_btm(rng, 3, 2).nbytes == (3 + 2 + 2) * 4 * 8


class TestRhsReshape:
    def test_all_layouts(self):
        n, m = 4, 3
        for shape in [(n, m), (n, m, 5), (n * m,), (n * m, 5)]:
            arr = np.arange(np.prod(shape), dtype=float).reshape(shape)
            norm, original = reshape_rhs(arr, n, m)
            assert norm.shape[:2] == (n, m)
            back = restore_rhs_shape(norm, original)
            np.testing.assert_array_equal(back, arr)

    def test_bad_shape(self):
        with pytest.raises(ShapeError):
            reshape_rhs(np.zeros((3, 5)), 4, 3)
