"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import helmholtz_block_system, random_rhs


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_system():
    """A well-conditioned 12x3 block system plus a 2-RHS right-hand side."""
    matrix, _ = helmholtz_block_system(12, 3)
    b = random_rhs(12, 3, nrhs=2, seed=0)
    return matrix, b


def invertible_block(rng: np.random.Generator, m: int) -> np.ndarray:
    """A random block guaranteed comfortably invertible."""
    a = rng.standard_normal((m, m))
    return a + m * np.eye(m)
