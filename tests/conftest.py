"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import helmholtz_block_system, random_rhs


@pytest.fixture(autouse=True)
def _isolated_incident_dir(tmp_path, monkeypatch):
    """Redirect incident-bundle capture away from ``results/incidents``.

    Any test that trips a runtime failure path would otherwise litter
    the repo's real incident store (and mutate its retention state);
    the env var is read at capture time, so pointing it at ``tmp_path``
    isolates every test.  Tests that assert on bundles read the same
    directory.
    """
    monkeypatch.setenv("REPRO_INCIDENT_DIR", str(tmp_path / "incidents"))


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_system():
    """A well-conditioned 12x3 block system plus a 2-RHS right-hand side."""
    matrix, _ = helmholtz_block_system(12, 3)
    b = random_rhs(12, 3, nrhs=2, seed=0)
    return matrix, b


def invertible_block(rng: np.random.Generator, m: int) -> np.ndarray:
    """A random block guaranteed comfortably invertible."""
    a = rng.standard_normal((m, m))
    return a + m * np.eye(m)
