"""Backend-agnostic Communicator conformance suite.

Every test in this module runs the *same* SPMD program under both
execution backends (``threads`` and ``processes``) and asserts the
same semantics — point-to-point ordering, wildcard matching, request
objects, every collective, communicator surgery — so the backends
cannot drift apart.  Programs are module-level functions: the process
backend ships them to spawned workers by pickling, and a closure would
silently fall back to threads (defeating the point of the matrix).

The cross-backend *bitwise parity* checks on the real solvers live in
``test_mp_backend.py``; this file is about the communication API
contract itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import ANY_SOURCE, ANY_TAG, MAX, SUM, Status, run_spmd
from repro.comm.mp import shutdown_pool

BACKENDS = ("threads", "processes")

pytestmark = pytest.mark.parametrize("backend", BACKENDS)


@pytest.fixture(scope="module", autouse=True)
def _teardown_pool():
    yield
    shutdown_pool()


def _run(program, nranks, backend, **kwargs):
    result = run_spmd(program, nranks, backend=backend, **kwargs)
    assert result.backend == (backend if nranks > 1 else "threads")
    return result


# ---------------------------------------------------------------------------
# programs (module level: must be picklable for the process backend)
# ---------------------------------------------------------------------------

def prog_ring(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(comm.rank * 10, right, tag=1)
    return comm.recv(source=left, tag=1)


def prog_same_tag_ordering(comm):
    if comm.rank == 0:
        for i in range(4):
            comm.send(i, 1, tag=7)
        return None
    return [comm.recv(source=0, tag=7) for _ in range(4)]


def prog_wildcards(comm):
    if comm.rank == 0:
        got = []
        for _ in range(comm.size - 1):
            status = Status()
            value = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
            assert status.source >= 1 and status.tag == 100 + status.source
            got.append((status.source, value))
        return sorted(got)
    comm.send(comm.rank * 3, 0, tag=100 + comm.rank)
    return None


def prog_tag_selectivity(comm):
    if comm.rank == 0:
        comm.send("a", 1, tag=1)
        comm.send("b", 1, tag=2)
        return None
    second = comm.recv(source=0, tag=2)  # matches past the tag=1 message
    first = comm.recv(source=0, tag=1)
    return (first, second)


def prog_isend_waitall(comm):
    reqs = [comm.isend(comm.rank * 100 + d, d, tag=3)
            for d in range(comm.size) if d != comm.rank]
    recvs = [comm.irecv(source=s, tag=3)
             for s in range(comm.size) if s != comm.rank]
    for r in reqs:
        r.wait()
    return sorted(r.wait() for r in recvs)


def prog_sendrecv(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    return comm.sendrecv(comm.rank, right, sendtag=4,
                         source=left, recvtag=4)


def prog_numpy_roundtrip(comm):
    if comm.rank == 0:
        payload = {
            "a": np.arange(4096, dtype=np.float64).reshape(64, 64),
            "b": (np.float32(1.5), [np.arange(3, dtype=np.int64)]),
        }
        comm.send(payload, 1, tag=5)
        return None
    got = comm.recv(source=0, tag=5)
    return (got["a"].dtype.str, got["a"].shape, float(got["a"].sum()),
            float(got["b"][0]), got["b"][1][0].tolist())


def prog_collectives(comm):
    out = {}
    out["bcast"] = comm.bcast("root" if comm.rank == 0 else None, root=0)
    out["gather"] = comm.gather(comm.rank, root=0)
    out["allgather"] = comm.allgather(comm.rank ** 2)
    out["scatter"] = comm.scatter(
        [f"s{i}" for i in range(comm.size)] if comm.rank == 0 else None,
        root=0)
    out["alltoall"] = comm.alltoall(
        [comm.rank * 10 + d for d in range(comm.size)])
    out["reduce"] = comm.reduce(comm.rank + 1, op=SUM, root=0)
    out["allreduce"] = comm.allreduce(comm.rank, op=MAX)
    out["scan"] = comm.scan(comm.rank + 1, op=SUM)
    out["exscan"] = comm.exscan(comm.rank + 1, op=SUM)
    comm.barrier()
    return out


def prog_noncommutative_scan(comm):
    return comm.scan(chr(97 + comm.rank), op=lambda a, b: a + b)


def prog_split(comm):
    sub = comm.split(color=comm.rank % 2, key=comm.rank)
    values = sub.allgather(comm.rank)
    total = comm.allreduce(1)
    return (values, total)


def prog_dup(comm):
    dup = comm.dup()
    comm.send(comm.rank, (comm.rank + 1) % comm.size, tag=6)
    other = dup.allreduce(comm.rank)  # dup traffic must not cross
    mine = comm.recv(source=(comm.rank - 1) % comm.size, tag=6)
    return (mine, other)


def prog_rank_extra(comm, base, extra):
    return base + extra


# ---------------------------------------------------------------------------
# conformance tests
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("p", [2, 3, 4])
def test_ring_p2p(backend, p):
    result = _run(prog_ring, p, backend)
    assert result.values == [((r - 1) % p) * 10 for r in range(p)]


def test_same_source_tag_fifo(backend):
    result = _run(prog_same_tag_ordering, 2, backend)
    assert result.values[1] == [0, 1, 2, 3]


@pytest.mark.parametrize("p", [2, 4])
def test_wildcard_source_and_tag(backend, p):
    result = _run(prog_wildcards, p, backend)
    assert result.values[0] == [(s, s * 3) for s in range(1, p)]


def test_tag_selectivity_out_of_order(backend):
    result = _run(prog_tag_selectivity, 2, backend)
    assert result.values[1] == ("a", "b")


@pytest.mark.parametrize("p", [2, 3])
def test_isend_irecv_waitall(backend, p):
    result = _run(prog_isend_waitall, p, backend)
    for rank, got in enumerate(result.values):
        assert got == sorted(s * 100 + rank
                             for s in range(p) if s != rank)


def test_sendrecv_ring(backend):
    result = _run(prog_sendrecv, 4, backend)
    assert result.values == [(r - 1) % 4 for r in range(4)]


def test_numpy_payload_roundtrip(backend):
    result = _run(prog_numpy_roundtrip, 2, backend)
    dtype, shape, total, scalar, ints = result.values[1]
    assert (dtype, shape) == ("<f8", (64, 64))
    assert total == float(np.arange(4096).sum())
    assert (scalar, ints) == (1.5, [0, 1, 2])


@pytest.mark.parametrize("p", [1, 2, 3, 4, 5])
def test_all_collectives(backend, p):
    result = _run(prog_collectives, p, backend)
    for rank, out in enumerate(result.values):
        assert out["bcast"] == "root"
        assert out["gather"] == (list(range(p)) if rank == 0 else None)
        assert out["allgather"] == [r ** 2 for r in range(p)]
        assert out["scatter"] == f"s{rank}"
        assert out["alltoall"] == [s * 10 + rank for s in range(p)]
        assert out["reduce"] == (p * (p + 1) // 2 if rank == 0 else None)
        assert out["allreduce"] == p - 1
        assert out["scan"] == (rank + 1) * (rank + 2) // 2
        expected_ex = rank * (rank + 1) // 2 if rank else None
        assert out["exscan"] == expected_ex


@pytest.mark.parametrize("p", [3, 4])
def test_noncommutative_scan_order(backend, p):
    # The operator lambda is created inside each worker (only the
    # program function crosses the process boundary), so this runs
    # natively on both backends.
    result = _run(prog_noncommutative_scan, p, backend)
    alphabet = "".join(chr(97 + r) for r in range(p))
    assert result.values == [alphabet[: r + 1] for r in range(p)]


def test_unpicklable_program_falls_back_to_threads(backend, monkeypatch):
    # A closure cannot be shipped to spawned workers; the process
    # backend must warn once and defer to threads rather than fail.
    captured = []

    def program(comm):
        captured.append(comm.rank)  # closes over local state
        return comm.allreduce(comm.rank)

    if backend == "processes":
        from repro.comm.mp import backend as mp_backend

        monkeypatch.setattr(mp_backend, "_unpicklable_warned", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            result = run_spmd(program, 3, backend=backend)
    else:
        result = run_spmd(program, 3, backend=backend)
    assert result.backend == "threads"
    assert result.values == [3, 3, 3]
    assert sorted(captured) == [0, 1, 2]


def test_split_subcommunicators(backend):
    result = _run(prog_split, 4, backend)
    for rank, (values, total) in enumerate(result.values):
        assert values == ([0, 2] if rank % 2 == 0 else [1, 3])
        assert total == 4


def test_dup_isolated_traffic(backend):
    result = _run(prog_dup, 3, backend)
    assert result.values == [((r - 1) % 3, 3) for r in range(3)]


def test_rank_args_and_shared_args(backend):
    result = run_spmd(prog_rank_extra, 3, 1000, backend=backend,
                      rank_args=[(r,) for r in range(3)])
    assert result.values == [1000, 1001, 1002]


def test_stats_and_virtual_time_match_reference(backend):
    result = _run(prog_ring, 4, backend)
    reference = run_spmd(prog_ring, 4, backend="threads")
    assert result.virtual_time == pytest.approx(
        reference.virtual_time, rel=1e-12)
    assert result.total_msgs_sent == reference.total_msgs_sent
    assert result.total_bytes_sent == reference.total_bytes_sent
