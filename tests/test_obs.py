"""Tests for the observability layer (repro.obs).

Covers the tracer primitives, the solver-phase instrumentation contract
(one span per phase per rank for every distributed solver), the Chrome
trace export format, the PhaseReport virtual-time tiling property, the
per-collective counters, and the zero-cost-when-disabled guarantee
(results and flop counts bit-identical with tracing off).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import solve
from repro.comm import run_spmd
from repro.core.ard import ARDFactorization
from repro.core.distribute import distribute_matrix, distribute_rhs
from repro.core.rd import rd_solve_spmd
from repro.core.spike import SpikeFactorization
from repro.exceptions import ReproError
from repro.obs import (
    Tracer,
    build_phase_report,
    chrome_trace_events,
    current_tracer,
    span,
    tracing,
    write_chrome_trace,
)
from repro.workloads import helmholtz_block_system, random_rhs

N, M = 16, 4


@pytest.fixture
def system():
    matrix, _ = helmholtz_block_system(N, M)
    b = random_rhs(N, M, nrhs=3, seed=0)
    return matrix, b


def _rd_result(matrix, b, nranks, trace):
    bb = b.reshape(N, M, -1)
    chunks = distribute_matrix(matrix, nranks)
    d_chunks = distribute_rhs(bb[:, :, :1], nranks)
    return run_spmd(
        rd_solve_spmd, nranks, copy_messages=False,
        rank_args=[(c, d) for c, d in zip(chunks, d_chunks)], trace=trace,
    )


# -- tracer primitives -----------------------------------------------------


def test_span_is_noop_without_tracer():
    assert current_tracer() is None
    with span("anything"):
        pass  # must not raise, must not record anywhere
    # The disabled path returns one shared object (no allocation).
    assert span("a") is span("b")


def test_tracing_installs_and_restores():
    with tracing() as tr:
        assert current_tracer() is tr
        with span("outer"):
            with span("inner", cat="detail"):
                pass
    assert current_tracer() is None
    names = {(s.name, s.cat, s.depth) for s in tr.spans}
    assert names == {("outer", "phase", 0), ("inner", "detail", 1)}


def test_tracer_records_wall_durations():
    tr = Tracer(rank=3)
    with tracing(tr):
        with span("work"):
            pass
    (rec,) = tr.spans
    assert rec.w_dur >= 0.0
    assert rec.v_start == rec.v_end == 0.0  # no clock bound
    trace = tr.finish()
    assert trace.rank == 3
    assert trace.to_dict()["spans"][0]["name"] == "work"


# -- solver phase instrumentation -----------------------------------------


@pytest.mark.parametrize("nranks", [1, 4])
def test_ard_phases_one_span_per_rank(system, nranks):
    matrix, b = system
    fact = ARDFactorization(matrix, nranks=nranks, trace=True)
    fact.solve(b)
    for result, phases in [
        (fact.factor_result, ["build", "scan", "closing"]),
        (fact.last_solve_result, ["build", "scan", "closing", "backsub"]),
    ]:
        assert len(result.traces) == nranks
        for trace in result.traces:
            assert [s.name for s in trace.phase_spans()] == phases


@pytest.mark.parametrize("nranks", [1, 4])
def test_rd_phases_one_span_per_rank(system, nranks):
    matrix, b = system
    result = _rd_result(matrix, b, nranks, trace=True)
    for trace in result.traces:
        assert [s.name for s in trace.phase_spans()] == [
            "setup", "build", "scan", "closing", "backsub",
        ]


@pytest.mark.parametrize("nranks", [1, 4])
def test_spike_phases_one_span_per_rank(system, nranks):
    matrix, b = system
    fact = SpikeFactorization(matrix, nranks=nranks, trace=True)
    fact.solve(b)
    for result, phases in [
        (fact.factor_result, ["local_factor", "spikes", "reduced"]),
        (fact.last_solve_result, ["local_solve", "reduced", "combine"]),
    ]:
        assert len(result.traces) == nranks
        for trace in result.traces:
            assert [s.name for s in trace.phase_spans()] == phases


def test_untraced_run_has_no_traces(system):
    matrix, b = system
    fact = ARDFactorization(matrix, nranks=4)
    fact.solve(b)
    assert fact.factor_result.traces is None
    assert fact.last_solve_result.traces is None
    assert fact.factor_result.phase_report() is None


# -- zero-cost-when-disabled ----------------------------------------------


def test_disabled_tracing_bit_identical(system):
    matrix, b = system
    x_off, info_off = solve(matrix, b, method="ard", nranks=4,
                            return_info=True)
    x_on, info_on = solve(matrix, b, method="ard", nranks=4, trace=True,
                          return_info=True)
    assert np.array_equal(x_off, x_on)
    assert info_off.virtual_time == info_on.virtual_time
    assert (info_off.factor_result.total_flops
            == info_on.factor_result.total_flops)
    assert ([s.flops_by_kernel for s in info_off.solve_result.stats]
            == [s.flops_by_kernel for s in info_on.solve_result.stats])
    assert info_off.phase_report is None
    assert info_on.phase_report is not None


# -- PhaseReport -----------------------------------------------------------


def test_phase_report_sums_to_virtual_time(system):
    matrix, b = system
    x, info = solve(matrix, b, method="ard", nranks=4, trace=True,
                    return_info=True)
    report = info.phase_report
    total = sum(report.virtual_by_phase().values())
    assert total == pytest.approx(info.virtual_time, rel=0.01)
    assert report.virtual_total == pytest.approx(info.virtual_time, rel=1e-12)
    assert report.nranks == 4
    # Per-phase per-rank stats exist for every rank.
    assert len(report.per_rank("solve", "scan")) == 4
    assert "factor/scan" in report.phases()
    rendered = report.render()
    assert "factor/scan" in rendered and "solve/backsub" in rendered
    as_dict = report.to_dict()
    assert json.dumps(as_dict)  # JSON-serializable


def test_phase_report_rd_and_spike(system):
    matrix, b = system
    result = _rd_result(matrix, b, 4, trace=True)
    report = build_phase_report([("solve", result)])
    assert sum(report.virtual_by_phase().values()) == pytest.approx(
        result.virtual_time, rel=0.01
    )
    x, info = solve(matrix, b, method="spike", nranks=4, trace=True,
                    return_info=True)
    total = sum(info.phase_report.virtual_by_phase().values())
    assert total == pytest.approx(info.virtual_time, rel=0.01)


def test_build_phase_report_requires_traces(system):
    matrix, b = system
    fact = ARDFactorization(matrix, nranks=2)  # no tracing
    fact.solve(b)
    assert build_phase_report([("factor", fact.factor_result)]) is None
    assert build_phase_report([("solve", None)]) is None


def test_sequential_methods_have_no_virtual_time(system):
    matrix, b = system
    x, info = solve(matrix, b, method="thomas", trace=True, return_info=True)
    assert info.virtual_time is None
    assert info.phase_report is None


# -- Chrome trace export ---------------------------------------------------


def test_chrome_trace_round_trips(system, tmp_path):
    matrix, b = system
    fact = ARDFactorization(matrix, nranks=4, trace=True)
    fact.solve(b)
    path = write_chrome_trace(tmp_path / "run.trace.json", fact)
    data = json.loads(path.read_text())
    events = data["traceEvents"]
    assert events, "export produced no events"
    for event in events:
        # "s"/"f" are the message flow arrows (docs/PROFILING.md).
        assert event["ph"] in ("X", "i", "M", "s", "f")
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] != "M":
            assert isinstance(event["ts"], float)
            assert event["ts"] >= 0.0
        if event["ph"] == "X":
            assert event["dur"] >= 0.0
    # One timeline track per rank in both clock domains.
    for pid in (0, 1):
        tids = {e["tid"] for e in events if e["pid"] == pid and e["ph"] != "M"}
        assert tids == {0, 1, 2, 3}
    # Thread-name metadata labels every rank.
    names = {(e["pid"], e["args"]["name"]) for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert (0, "rank 0") in names and (1, "rank 3") in names


def test_chrome_trace_segments_lay_end_to_end(system):
    matrix, b = system
    fact = ARDFactorization(matrix, nranks=2, trace=True)
    fact.solve(b)
    events = chrome_trace_events(
        [("factor", fact.factor_result), ("solve", fact.last_solve_result)],
        include_wall=False,
    )
    factor_vt_us = fact.factor_result.virtual_time * 1e6
    solve_spans = [e for e in events if e["ph"] == "X"
                   and e["args"]["segment"] == "solve"]
    assert solve_spans
    assert all(e["ts"] >= factor_vt_us - 1e-9 for e in solve_spans)


def test_chrome_trace_rejects_untraced(system):
    matrix, b = system
    fact = ARDFactorization(matrix, nranks=2)
    fact.solve(b)
    with pytest.raises(ReproError, match="trace=True"):
        chrome_trace_events([("factor", fact.factor_result)])


# -- collective counters ---------------------------------------------------


def test_collective_counters_count_outermost_only():
    def program(comm):
        comm.allgather(comm.rank)       # composes gather + bcast internally
        comm.allreduce(1)               # composes reduce + bcast internally
        comm.barrier()
        return None

    result = run_spmd(program, 4)
    counts = result.collective_counts()
    # Each rank counts each user-facing call once: no inner gather/bcast.
    assert counts == {"allgather": 4, "allreduce": 4, "barrier": 4}
    nbytes = result.collective_bytes()
    assert nbytes["allgather"] > 0
    assert nbytes["barrier"] >= 0
    for stats in result.stats:
        assert stats.coll_counts == {
            "allgather": 1, "allreduce": 1, "barrier": 1,
        }
    # Collective byte attribution covers all p2p traffic of this program.
    assert sum(nbytes.values()) == result.total_bytes_sent


def test_collective_spans_when_traced():
    def program(comm):
        comm.allgather(comm.rank)
        return None

    result = run_spmd(program, 4, trace=True)
    for trace in result.traces:
        coll = [s for s in trace.spans if s.cat == "coll"]
        assert [s.name for s in coll] == ["allgather"]


def test_send_recv_events_when_traced():
    def program(comm):
        if comm.rank == 0:
            comm.send(np.zeros(4), 1, tag=7)
        elif comm.rank == 1:
            comm.recv(source=0, tag=7)
        return None

    result = run_spmd(program, 2, trace=True)
    sends = [e for e in result.traces[0].events if e.name == "send"]
    assert len(sends) == 1 and sends[0].attrs["dest"] == 1
    recvs = [s for s in result.traces[1].spans if s.name == "recv"]
    assert len(recvs) == 1
    assert recvs[0].attrs["source"] == 0 and recvs[0].attrs["nbytes"] == 32


# -- stats serialization ---------------------------------------------------


def test_simulation_result_to_dict(system):
    matrix, b = system
    fact = ARDFactorization(matrix, nranks=4)
    fact.solve(b)
    d = fact.factor_result.to_dict()
    assert d["nranks"] == 4
    assert d["virtual_time"] == fact.factor_result.virtual_time
    assert len(d["ranks"]) == 4
    assert d["ranks"][2]["rank"] == 2
    assert json.dumps(d)
    compact = fact.factor_result.to_dict(include_ranks=False)
    assert "ranks" not in compact


def test_write_stats_json(tmp_path, system):
    from repro.io import write_stats_json

    matrix, b = system
    fact = ARDFactorization(matrix, nranks=2)
    fact.solve(b)
    path = write_stats_json(tmp_path / "run.stats.json", fact.factor_result,
                            extra={"label": "factor"})
    data = json.loads(path.read_text())
    assert data["label"] == "factor"
    assert data["nranks"] == 2


def test_experiment_stats_collection(tmp_path):
    from repro.harness import run_experiment

    result = run_experiment("recon-F1", "smoke", out_dir=tmp_path,
                            verbose=False)
    assert result.sim_stats, "simulation-backed experiment logged no runs"
    labels = {entry["label"] for entry in result.sim_stats}
    assert {"ard_factor", "ard_solve", "rd_solve"} <= labels
    data = json.loads((tmp_path / "recon-F1.stats.json").read_text())
    assert data["exp_id"] == "recon-F1"
    assert len(data["sim_stats"]) == len(result.sim_stats)


# -- harness trace CLI -----------------------------------------------------


def test_trace_experiment_writes_chrome_trace(tmp_path, capsys):
    from repro.harness import trace_experiment

    path = trace_experiment("recon-T2", "smoke", out_dir=tmp_path)
    assert path == tmp_path / "recon-T2.trace.json"
    data = json.loads(path.read_text())
    events = data["traceEvents"]
    # Two runs (ard, rd) x two clock domains; 4 rank tracks in each.
    pids = {e["pid"] for e in events}
    assert pids == {0, 1, 2, 3}
    for pid in pids:
        tids = {e["tid"] for e in events if e["pid"] == pid and e["ph"] != "M"}
        assert tids >= {0, 1, 2, 3}
        # Anything above the rank tracks is the critical-path overlay
        # (virtual clock domains only; see docs/PROFILING.md).
        extra = [e for e in events
                 if e["pid"] == pid and e["ph"] != "M" and e["tid"] > 3]
        assert all(e["cat"] == "critical" for e in extra)
    assert any(e.get("cat") == "critical" for e in events)
    out = capsys.readouterr().out
    assert "Phase breakdown" in out


def test_trace_experiment_rejects_unknown_id(tmp_path):
    from repro.harness import trace_experiment

    with pytest.raises(Exception):
        trace_experiment("no-such-exp", "smoke", out_dir=tmp_path)


# ---------------------------------------------------------------------------
# metrics registry (repro.obs.metrics)


class TestMetricsRegistry:
    def test_counter_gauge_summary(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("req").inc()
        reg.counter("req").inc(3)
        reg.gauge("depth").set(7)
        reg.gauge("depth").add(-2)
        for v in (1.0, 4.0, 2.5):
            reg.summary("batch").observe(v)
        snap = reg.snapshot()
        assert snap["counters"]["req"] == 4
        assert snap["gauges"]["depth"] == 5
        s = snap["summaries"]["batch"]
        assert (s["count"], s["min"], s["max"], s["last"]) == (3, 1.0, 4.0, 2.5)
        assert s["mean"] == pytest.approx(7.5 / 3)
        json.dumps(snap)

    def test_counter_rejects_negative(self):
        from repro.obs import Counter

        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_kind_conflict_rejected(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="different kind"):
            reg.gauge("x")

    def test_instruments_idempotent(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.summary("s") is reg.summary("s")

    def test_concurrent_counting_is_exact(self):
        import threading

        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        counter = reg.counter("n")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]  # repro: noqa[RC103]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000

    def test_concurrent_summary_observe_and_snapshot(self):
        import threading

        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        stop = threading.Event()  # repro: noqa[RC103]

        def observe():
            s = reg.summary("lat")
            for i in range(2000):
                s.observe(float(i % 100))

        def snapshot():
            while not stop.is_set():
                snap = reg.snapshot()
                summ = snap["summaries"].get("lat")
                if summ:  # every observed snapshot must be coherent
                    assert 0.0 <= summ["min"] <= summ["max"] <= 99.0
                    assert summ["count"] >= 1

        reader = threading.Thread(target=snapshot)  # repro: noqa[RC103]
        writers = [threading.Thread(target=observe) for _ in range(4)]  # repro: noqa[RC103]
        reader.start()
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        reader.join()
        assert reg.summary("lat").count == 8000

    def test_concurrent_instrument_creation_is_single_instance(self):
        import threading

        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)  # repro: noqa[RC103]

        def create():
            barrier.wait()
            seen.append(reg.counter("shared"))

        threads = [threading.Thread(target=create) for _ in range(8)]  # repro: noqa[RC103]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1

    def test_summary_quantile_empty_is_none(self):
        from repro.obs import Summary

        s = Summary()
        assert s.quantile(0.5) is None
        assert "p50" not in s.to_dict() or s.to_dict().get("p50") is None

    def test_summary_quantile_single_observation(self):
        from repro.obs import Summary

        s = Summary()
        s.observe(42.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert s.quantile(q) == 42.0
        d = s.to_dict()
        assert d["p50"] == d["p99"] == 42.0

    def test_summary_quantile_bounds_and_order(self):
        from repro.obs import Summary

        s = Summary()
        for v in range(1, 101):
            s.observe(float(v))
        assert s.quantile(0.0) == 1.0
        assert s.quantile(1.0) == 100.0
        assert s.quantile(0.5) == pytest.approx(50.0, abs=1.0)
        with pytest.raises(ValueError):
            s.quantile(1.5)
        with pytest.raises(ValueError):
            s.quantile(-0.1)

    def test_summary_quantile_windows_recent_observations(self):
        from repro.obs import SUMMARY_WINDOW, Summary

        s = Summary()
        for _ in range(SUMMARY_WINDOW):
            s.observe(1000.0)
        for _ in range(SUMMARY_WINDOW):
            s.observe(1.0)  # push every old observation out of the ring
        assert s.quantile(0.5) == 1.0
        assert s.max == 1000.0  # whole-stream aggregates keep history

    def test_summary_rejects_bad_window(self):
        from repro.obs import Summary

        with pytest.raises(ValueError):
            Summary(window=0)
