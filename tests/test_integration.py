"""End-to-end integration tests across modules.

These exercise whole user workflows: time stepping with factor reuse,
multi-shot solves, cross-solver consistency on shared problems, and the
harness + perfmodel working together.
"""

import numpy as np
import pytest

from repro import factor, solve
from repro.core import ARDFactorization, ThomasFactorization
from repro.core.diagnostics import diagnose
from repro.core.spike import SpikeFactorization
from repro.perfmodel import PAPER_ERA_MODEL
from repro.workloads import (
    absorbing_helmholtz_system,
    heat_implicit_system,
    helmholtz_block_system,
    multigroup_diffusion_system,
    point_source_rhs,
    random_rhs,
    smooth_rhs,
)


class TestTimeSteppingWorkflow:
    def test_ard_trajectory_matches_thomas(self):
        """Sequential time stepping: ARD (distributed) and Thomas
        (sequential) must produce the same trajectory on a
        bounded-growth operator."""
        n, m, steps = 24, 4, 10
        mat, _ = helmholtz_block_system(n, m)
        ard = ARDFactorization(mat, nranks=4)
        thomas = ThomasFactorization(mat)
        u_ard = smooth_rhs(n, m, 1)
        u_thomas = u_ard.copy()
        for _ in range(steps):
            u_ard = ard.solve(u_ard)
            u_thomas = thomas.solve(u_thomas)
        np.testing.assert_allclose(u_ard, u_thomas, rtol=1e-8, atol=1e-10)

    def test_spike_trajectory_on_dominant_operator(self):
        n, m, steps = 32, 6, 8
        mat, _ = heat_implicit_system(n, m, dt=0.05)
        spike = SpikeFactorization(mat, nranks=4)
        thomas = ThomasFactorization(mat)
        u_s = smooth_rhs(n, m, 1)
        u_t = u_s.copy()
        for _ in range(steps):
            u_s = spike.solve(u_s)
            u_t = thomas.solve(u_t)
        np.testing.assert_allclose(u_s, u_t, rtol=1e-9, atol=1e-12)


class TestMultiShotWorkflow:
    def test_point_sources_superpose(self):
        """Linearity check across the whole pipeline: solving two unit
        sources separately must equal solving their sum."""
        n, m = 20, 3
        mat, _ = helmholtz_block_system(n, m)
        fact = ARDFactorization(mat, nranks=4)
        b = point_source_rhs(n, m, [(3, 1, 1.0), (15, 2, 1.0)])
        x = fact.solve(b)
        combined = fact.solve(b[:, :, :1] + b[:, :, 1:])
        np.testing.assert_allclose(
            x[:, :, :1] + x[:, :, 1:], combined, rtol=1e-9, atol=1e-12
        )

    def test_batched_equals_columnwise(self):
        n, m, r = 16, 4, 6
        mat, _ = helmholtz_block_system(n, m)
        fact = ARDFactorization(mat, nranks=3)
        b = random_rhs(n, m, r, seed=0)
        batched = fact.solve(b)
        for col in range(r):
            single = fact.solve(b[:, :, col:col + 1])
            np.testing.assert_allclose(
                batched[:, :, col:col + 1], single, rtol=1e-10, atol=1e-13
            )


class TestMethodSelectionWorkflow:
    @pytest.mark.parametrize("gen,expect_rd_ok", [
        (helmholtz_block_system, True),
        (heat_implicit_system, False),
    ])
    def test_diagnose_steers_method_choice(self, gen, expect_rd_ok):
        mat, _ = gen(48, 4)
        checks = diagnose(mat, warn=False)
        assert (checks.rd_feasible and checks.rd_stable) == expect_rd_ok
        method = "ard" if (checks.rd_feasible and checks.rd_stable) else "spike"
        b = random_rhs(48, 4, nrhs=2, seed=1)
        x = solve(mat, b, method=method, nranks=4)
        assert mat.residual(x, b) < 1e-9


class TestCrossSolverConsistency:
    def test_all_factorizations_agree_complex(self):
        mat, _ = absorbing_helmholtz_system(16, 3)
        b = random_rhs(16, 3, nrhs=2, seed=2).astype(np.complex128)
        solutions = {}
        for method in ("ard", "spike", "thomas", "cyclic"):
            fact = factor(mat, method=method, nranks=4)
            solutions[method] = fact.solve(b)
        ref = solutions["thomas"]
        for method, x in solutions.items():
            np.testing.assert_allclose(x, ref, rtol=1e-8, atol=1e-10,
                                       err_msg=method)

    def test_multigroup_all_methods(self):
        mat, _ = multigroup_diffusion_system(10, 4, seed=3, coupling=2.0,
                                             absorption=0.1)
        b = random_rhs(10, 4, nrhs=3, seed=4)
        xs = [solve(mat, b, method=mth, nranks=2)
              for mth in ("ard", "rd", "spike", "thomas", "cyclic", "dense")]
        for x in xs[1:]:
            np.testing.assert_allclose(x, xs[0], rtol=1e-7, atol=1e-9)


class TestTimingConsistency:
    def test_virtual_times_reproducible(self):
        """The whole stack (solvers + comm + cost model) must yield
        bit-identical virtual times across repeated runs."""
        mat, _ = helmholtz_block_system(32, 4)
        b = random_rhs(32, 4, nrhs=4, seed=5)
        times = set()
        for _ in range(3):
            fact = ARDFactorization(mat, nranks=4, cost_model=PAPER_ERA_MODEL)
            fact.solve(b)
            times.add((fact.factor_result.virtual_time,
                       fact.last_solve_result.virtual_time))
        assert len(times) == 1

    def test_factor_time_independent_of_rhs_count(self):
        mat, _ = helmholtz_block_system(32, 4)
        f1 = ARDFactorization(mat, nranks=4, cost_model=PAPER_ERA_MODEL)
        f2 = ARDFactorization(mat, nranks=4, cost_model=PAPER_ERA_MODEL)
        f1.solve(random_rhs(32, 4, 1, seed=6))
        f2.solve(random_rhs(32, 4, 64, seed=7))
        assert f1.factor_result.virtual_time == f2.factor_result.virtual_time
        assert (f2.last_solve_result.virtual_time
                > f1.last_solve_result.virtual_time)
