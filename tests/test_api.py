"""Tests for the front-end solve/factor API."""

import numpy as np
import pytest

from repro.core.api import FACTOR_METHODS, SOLVE_METHODS, SolveInfo, factor, solve
from repro.exceptions import ConfigError, ShapeError, StabilityWarning
from repro.linalg.reference import dense_solve
from repro.workloads import helmholtz_block_system, poisson_block_system, random_rhs


@pytest.fixture
def system():
    # The absorbing Helmholtz system lies in every solver's domain:
    # bounded transfer growth (RD/ARD) *and* Thomas-factorable local
    # systems (SPIKE) — and it exercises complex arithmetic throughout.
    from repro.workloads import absorbing_helmholtz_system

    mat, _ = absorbing_helmholtz_system(12, 3)
    b = random_rhs(12, 3, nrhs=3, seed=0).astype(mat.dtype)
    return mat, b


class TestSolveMethods:
    @pytest.mark.parametrize("method", SOLVE_METHODS)
    def test_all_methods_agree(self, system, method):
        mat, b = system
        x = solve(mat, b, method=method, nranks=3)
        np.testing.assert_allclose(x, dense_solve(mat, b), rtol=1e-7, atol=1e-9)

    def test_default_is_ard(self, system):
        mat, b = system
        _, info = solve(mat, b, return_info=True)
        assert info.method == "ard"

    def test_unknown_method(self, system):
        mat, b = system
        with pytest.raises(ConfigError, match="unknown method"):
            solve(mat, b, method="gaussian")

    def test_rejects_non_matrix(self, system):
        _, b = system
        with pytest.raises(ShapeError):
            solve(np.eye(36), b)

    def test_rejects_bad_nranks(self, system):
        mat, b = system
        with pytest.raises(ShapeError):
            solve(mat, b, nranks=0)

    def test_layout_preserved(self, system):
        mat, _ = system
        flat = random_rhs(12, 3, 1, seed=1).reshape(36)
        assert solve(mat, flat, method="thomas").shape == (36,)
        two_d = random_rhs(12, 3, 2, seed=2).reshape(36, 2)
        assert solve(mat, two_d, method="ard", nranks=2).shape == (36, 2)


class TestSolveInfo:
    def test_info_fields_ard(self, system):
        mat, b = system
        x, info = solve(mat, b, method="ard", nranks=2, return_info=True)
        assert isinstance(info, SolveInfo)
        assert info.nrhs == 3
        assert info.nranks == 2
        assert info.residual < 1e-10
        assert info.virtual_time > 0
        assert info.factor_result is not None
        assert info.solve_result is not None

    def test_info_fields_rd(self, system):
        mat, b = system
        _, info = solve(mat, b, method="rd", nranks=2, return_info=True)
        assert info.virtual_time > 0
        assert info.factor_result is None

    def test_info_fields_sequential(self, system):
        mat, b = system
        _, info = solve(mat, b, method="thomas", return_info=True)
        assert info.virtual_time is None
        assert info.nranks == 1

    def test_check_warns_on_growing_system(self):
        mat, _ = poisson_block_system(24, 3)
        b = random_rhs(24, 3, 1, seed=3)
        with pytest.warns(StabilityWarning):
            solve(mat, b, method="rd", nranks=2, check=True)

    def test_check_silent_on_bounded_system(self, system):
        import warnings

        mat, b = system
        with warnings.catch_warnings():
            warnings.simplefilter("error", StabilityWarning)
            solve(mat, b, method="ard", nranks=2, check=True)


class TestFactor:
    @pytest.mark.parametrize("method", FACTOR_METHODS)
    def test_factor_solve(self, system, method):
        mat, b = system
        fact = factor(mat, method=method, nranks=2)
        assert mat.residual(fact.solve(b), b) < 1e-10

    def test_unknown_factor_method(self, system):
        mat, _ = system
        with pytest.raises(ConfigError):
            factor(mat, method="dense")

    def test_factor_rejects_non_matrix(self):
        with pytest.raises(ShapeError):
            factor(np.eye(4), method="thomas")


class TestUnknownKwargs:
    """Mistyped options must fail loudly as ConfigError, not silently."""

    def test_solve_rejects_unknown_kwargs(self, system):
        mat, b = system
        with pytest.raises(ConfigError, match="unknown keyword"):
            solve(mat, b, method="thomas", nrank=4)

    def test_factor_rejects_unknown_kwargs(self, system):
        mat, _ = system
        with pytest.raises(ConfigError, match="refined"):
            factor(mat, method="thomas", refined=1)

    def test_error_names_all_strays(self, system):
        mat, b = system
        with pytest.raises(ConfigError, match="bogus.*nrank"):
            solve(mat, b, bogus=1, nrank=2)

    def test_config_error_is_repro_error(self, system):
        from repro.exceptions import ReproError

        mat, b = system
        with pytest.raises(ReproError):
            solve(mat, b, tracing=True)


class TestOneDimensionalRhs:
    """Flat 1-D right-hand sides are accepted uniformly and the
    solution comes back in the caller's layout (shared helper:
    ``reshape_rhs`` / ``restore_rhs_shape``)."""

    @pytest.mark.parametrize("method", FACTOR_METHODS)
    def test_factorizations_accept_flat_1d(self, system, method):
        mat, _ = system
        flat = random_rhs(12, 3, 1, seed=5).reshape(36).astype(mat.dtype)
        fact = factor(mat, method=method, nranks=2)
        x = fact.solve(flat)
        assert x.shape == (36,)
        assert mat.residual(x.reshape(12, 3, 1), flat.reshape(12, 3, 1)) < 1e-8

    @pytest.mark.parametrize("method", SOLVE_METHODS)
    def test_solve_accepts_flat_1d(self, system, method):
        mat, _ = system
        flat = random_rhs(12, 3, 1, seed=6).reshape(36).astype(mat.dtype)
        x = solve(mat, flat, method=method, nranks=2)
        assert x.shape == (36,)
        assert mat.residual(x.reshape(12, 3, 1), flat.reshape(12, 3, 1)) < 1e-8

    @pytest.mark.parametrize("method", FACTOR_METHODS)
    def test_factorizations_accept_nm_2d(self, system, method):
        mat, _ = system
        b = random_rhs(12, 3, 1, seed=7).reshape(12, 3).astype(mat.dtype)
        x = factor(mat, method=method, nranks=2).solve(b)
        assert x.shape == (12, 3)

    def test_refine_preserves_1d_layout(self, system):
        mat, _ = system
        flat = random_rhs(12, 3, 1, seed=8).reshape(36).astype(mat.dtype)
        x = factor(mat, method="ard", nranks=2).solve(flat, refine=1)
        assert x.shape == (36,)


class TestFingerprint:
    def test_fingerprint_exposed(self, system):
        from repro.core.api import fingerprint

        mat, _ = system
        assert fingerprint(mat) == mat.fingerprint()
        key = fingerprint(mat, method="ard", nranks=2)
        assert key.startswith("ard:p2:") and key.endswith(mat.fingerprint())

    def test_fingerprint_validates(self, system):
        from repro.core.api import fingerprint

        mat, _ = system
        with pytest.raises(ConfigError):
            fingerprint(mat, method="gaussian")
        with pytest.raises(ShapeError):
            fingerprint("not a matrix")


class TestPackageExports:
    def test_lazy_top_level_exports(self):
        import repro

        assert repro.BlockTridiagonalMatrix is not None
        assert callable(repro.solve)
        assert callable(repro.factor)
        assert callable(repro.fingerprint)
        assert repro.ARDFactorization is not None
        assert repro.SolverService is not None
        assert callable(repro.run_spmd)
        assert repro.__version__

    def test_unknown_attribute(self):
        import repro

        with pytest.raises(AttributeError):
            repro.nonexistent_name
