"""Tests for the SPIKE-style partitioned solver (stable extension)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import run_spmd
from repro.core.distribute import distribute_matrix, distribute_rhs, gather_solution
from repro.core.spike import (
    SpikeFactorization,
    max_spike_ranks,
    spike_factor_spmd,
    spike_solve,
    spike_solve_spmd,
)
from repro.exceptions import ShapeError
from repro.linalg.reference import dense_solve
from repro.workloads import (
    heat_implicit_system,
    helmholtz_block_system,
    poisson_block_system,
    random_block_dd_system,
    random_rhs,
)


class TestMaxSpikeRanks:
    def test_clamps_to_two_rows_per_rank(self):
        assert max_spike_ranks(10, 8) == 5
        assert max_spike_ranks(10, 3) == 3
        assert max_spike_ranks(3, 4) == 1
        assert max_spike_ranks(1, 4) == 1


@pytest.mark.parametrize("p", [1, 2, 3, 4, 7])
class TestSpikeCorrectness:
    def test_matches_dense_poisson(self, p):
        mat, _ = poisson_block_system(20, 3)
        b = random_rhs(20, 3, nrhs=2, seed=0)
        x = SpikeFactorization(mat, nranks=p).solve(b)
        np.testing.assert_allclose(x, dense_solve(mat, b), rtol=1e-8, atol=1e-10)

    def test_matches_dense_absorbing_helmholtz(self, p):
        # Plain (indefinite) Helmholtz sub-blocks can defeat SPIKE's
        # unpivoted local Thomas; the absorbing variant's complex shift
        # keeps every leading Schur complement nonsingular.
        from repro.workloads import absorbing_helmholtz_system

        mat, _ = absorbing_helmholtz_system(21, 2)
        b = random_rhs(21, 2, nrhs=3, seed=1)
        x = SpikeFactorization(mat, nranks=p).solve(b)
        np.testing.assert_allclose(x, dense_solve(mat, b), rtol=1e-7, atol=1e-9)

    def test_random_dd(self, p):
        mat, _ = random_block_dd_system(18, 3, seed=2)
        b = random_rhs(18, 3, nrhs=2, seed=3)
        assert mat.residual(SpikeFactorization(mat, nranks=p).solve(b), b) < 1e-10


class TestStableWhereRdIsNot:
    """SPIKE's raison d'etre: dominant systems at lengths where the
    recurrence-based solvers have already lost all accuracy."""

    @pytest.mark.parametrize("gen,kw", [
        (poisson_block_system, {}),
        (heat_implicit_system, {"dt": 0.1}),
        (random_block_dd_system, {"seed": 4}),
    ])
    def test_large_n_dominant(self, gen, kw):
        mat, _ = gen(128, 4, **kw)
        b = random_rhs(128, 4, nrhs=2, seed=5)
        x = SpikeFactorization(mat, nranks=8).solve(b)
        assert mat.residual(x, b) < 1e-11

    def test_poisson_512(self):
        mat, _ = poisson_block_system(512, 3)
        b = random_rhs(512, 3, nrhs=1, seed=6)
        assert mat.residual(spike_solve(mat, b, nranks=16), b) < 1e-11


class TestFactorSolveSplit:
    def test_factor_reuse(self):
        mat, _ = poisson_block_system(24, 3)
        fact = SpikeFactorization(mat, nranks=4)
        for seed in range(3):
            b = random_rhs(24, 3, nrhs=2, seed=seed)
            assert mat.residual(fact.solve(b), b) < 1e-11

    def test_solve_flops_linear_in_r(self):
        mat, _ = poisson_block_system(32, 4)
        fact = SpikeFactorization(mat, nranks=4)
        flops = {}
        for r in (1, 8):
            fact.solve(random_rhs(32, 4, r, seed=7))
            flops[r] = fact.last_solve_result.total_flops
        assert flops[8] / flops[1] == pytest.approx(8.0, rel=0.05)

    def test_nranks_clamped(self):
        mat, _ = poisson_block_system(6, 2)
        fact = SpikeFactorization(mat, nranks=16)
        assert fact.nranks == 3
        b = random_rhs(6, 2, nrhs=1, seed=8)
        assert mat.residual(fact.solve(b), b) < 1e-11

    def test_state_nbytes(self):
        mat, _ = poisson_block_system(8, 2)
        fact = SpikeFactorization(mat, nranks=2)
        assert fact.nbytes > 0
        assert fact.factor_virtual_time > 0

    def test_validation(self):
        mat, _ = poisson_block_system(4, 2)
        with pytest.raises(ShapeError):
            SpikeFactorization(np.eye(8), nranks=2)
        with pytest.raises(ShapeError):
            SpikeFactorization(mat, nranks=0)


class TestSpmdLevel:
    def test_single_populated_rank_among_many(self):
        """kranks == 1 with idle ranks still participating in collectives."""
        mat, _ = poisson_block_system(3, 2)
        chunks = distribute_matrix(mat, 1)
        b = random_rhs(3, 2, nrhs=1, seed=9)

        def program(comm, chunk=chunks[0], d=distribute_rhs(b, 1)[0]):
            state = spike_factor_spmd(comm, chunk)
            return spike_solve_spmd(comm, state, d)

        res = run_spmd(program, 1)
        x = gather_solution(list(res.values))
        assert mat.residual(x, b) < 1e-11

    def test_undersized_chunk_rejected(self):
        mat, _ = poisson_block_system(3, 2)
        chunks = distribute_matrix(mat, 2)  # chunk sizes [2, 1]
        with pytest.raises(ShapeError, match="at least|>= 2"):
            run_spmd(spike_factor_spmd, 2, rank_args=[(c,) for c in chunks])

    def test_spmd_pipeline_matches_driver(self):
        mat, _ = poisson_block_system(16, 3)
        b = random_rhs(16, 3, nrhs=2, seed=10)
        chunks = distribute_matrix(mat, 4)
        d_chunks = distribute_rhs(b, 4)

        def program(comm, chunk, d):
            state = spike_factor_spmd(comm, chunk)
            return spike_solve_spmd(comm, state, d)

        res = run_spmd(program, 4, rank_args=list(zip(chunks, d_chunks)))
        x_spmd = gather_solution(list(res.values))
        x_driver = SpikeFactorization(mat, nranks=4).solve(b)
        np.testing.assert_allclose(x_spmd, x_driver, atol=1e-12)


class TestApiIntegration:
    def test_solve_method(self):
        mat, _ = poisson_block_system(20, 3)
        b = random_rhs(20, 3, nrhs=2, seed=11)
        from repro import solve

        x, info = solve(mat, b, method="spike", nranks=4, return_info=True)
        assert info.method == "spike"
        assert info.virtual_time > 0
        assert mat.residual(x, b) < 1e-11

    def test_factor_method(self):
        from repro import factor

        mat, _ = poisson_block_system(12, 2)
        fact = factor(mat, method="spike", nranks=3)
        b = random_rhs(12, 2, nrhs=1, seed=12)
        assert mat.residual(fact.solve(b), b) < 1e-11


class TestBcyclicReducedMode:
    """The fully-distributed reduced-solve variant must match the
    root-gather variant exactly in result, with no root bottleneck."""

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_matches_root_mode(self, p):
        mat, _ = random_block_dd_system(24, 3, seed=20)
        b = random_rhs(24, 3, nrhs=2, seed=21)
        x_root = SpikeFactorization(mat, nranks=p, reduced_mode="root").solve(b)
        x_bc = SpikeFactorization(mat, nranks=p, reduced_mode="bcyclic").solve(b)
        np.testing.assert_allclose(x_bc, x_root, rtol=1e-9, atol=1e-11)

    def test_invalid_mode_rejected(self):
        mat, _ = poisson_block_system(8, 2)
        with pytest.raises(ShapeError, match="reduced_mode"):
            SpikeFactorization(mat, nranks=2, reduced_mode="magic")

    def test_no_root_hotspot_in_messages(self):
        """In bcyclic mode no rank's solve-phase traffic dominates; in
        root mode rank 0 receives/sends a Theta(P) share."""
        mat, _ = random_block_dd_system(64, 2, seed=22)
        b = random_rhs(64, 2, nrhs=1, seed=23)
        p = 8
        root = SpikeFactorization(mat, nranks=p, reduced_mode="root")
        root.solve(b)
        bc = SpikeFactorization(mat, nranks=p, reduced_mode="bcyclic")
        bc.solve(b)
        root_tx = [s.msgs_sent for s in root.last_solve_result.stats]
        bc_tx = [s.msgs_sent for s in bc.last_solve_result.stats]
        # Root mode: rank 0 sends ~P scatter messages.
        assert root_tx[0] >= p - 1
        # Bcyclic mode: the busiest rank sends only O(log P) messages.
        assert max(bc_tx) <= 4 * (p.bit_length() + 2)

    def test_refine_supported(self):
        mat, _ = poisson_block_system(24, 3)
        fact = SpikeFactorization(mat, nranks=4, reduced_mode="bcyclic")
        b = random_rhs(24, 3, nrhs=2, seed=24)
        assert mat.residual(fact.solve(b, refine=1), b) < 1e-13


class TestComplexSupport:
    def test_absorbing_helmholtz(self):
        from repro.workloads import absorbing_helmholtz_system

        mat, _ = absorbing_helmholtz_system(24, 3)
        assert mat.dtype.kind == "c"
        b = random_rhs(24, 3, nrhs=2, seed=13).astype(np.complex128)
        b += 1j * random_rhs(24, 3, nrhs=2, seed=14)
        x = SpikeFactorization(mat, nranks=4).solve(b)
        assert mat.residual(x, b) < 1e-11


@settings(max_examples=15, deadline=None)
@given(st.integers(4, 40), st.integers(1, 4), st.integers(1, 6),
       st.integers(1, 3), st.integers(0, 500))
def test_property_spike_matches_dense(n, m, p, r, seed):
    mat, _ = random_block_dd_system(n, m, seed=seed)
    b = random_rhs(n, m, nrhs=r, seed=seed + 1)
    x = SpikeFactorization(mat, nranks=p).solve(b)
    np.testing.assert_allclose(x, dense_solve(mat, b), rtol=1e-7, atol=1e-9)
