"""Cross-rank edge reconstruction and critical-path analysis.

Synthetic two-rank fixtures with known send/recv pairing pin down the
edge matcher and the backward walk exactly; a hypothesis property test
then checks the headline invariants — critical-path length at least
the busiest rank's compute time and at most (here: exactly) the
makespan — over randomized message schedules; and real traced solver
runs close the loop against the live runtime's ``seq`` stamps.
"""

import json
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.stats import RankStats, SimulationResult
from repro.exceptions import ReproError
from repro.obs import (
    TelemetryServer,
    analyze_critical_path,
    build_phase_report,
    reconstruct_edges,
    write_chrome_trace,
)
from repro.obs.tracer import EventRecord, RankTrace, SpanRecord


def _span(name, cat, v0, v1, **attrs):
    return SpanRecord(name=name, cat=cat, depth=0, v_start=v0, v_end=v1,
                      w_start=v0, w_end=v1, attrs=attrs)


def _result(traces, vtimes):
    stats = [RankStats(rank=r, virtual_time=t) for r, t in enumerate(vtimes)]
    return SimulationResult(values=[None] * len(traces), stats=stats,
                            wall_time=0.0, traces=traces)


def _two_rank_fixture(with_seq=True):
    """Rank 0: compute [0,1], send at 1.0 (arrival 1.5).  Rank 1:
    compute [0,0.5], wait [0.5,1.5] for the message, compute [1.5,2]."""
    send_attrs = {"dest": 1, "tag": 7, "nbytes": 64, "arrival": 1.5}
    recv_attrs = {"source": 0, "tag": 7, "nbytes": 64, "arrival": 1.5}
    if with_seq:
        send_attrs["seq"] = 0
        recv_attrs["seq"] = 0
    t0 = RankTrace(rank=0, spans=[_span("a", "phase", 0.0, 1.0)],
                   events=[EventRecord(name="send", cat="comm", v_ts=1.0,
                                       w_ts=1.0, attrs=send_attrs)])
    t1 = RankTrace(rank=1, spans=[
        _span("b", "phase", 0.0, 0.5),
        _span("recv", "comm", 0.5, 1.5, **recv_attrs),
        _span("c", "phase", 1.5, 2.0),
    ])
    return _result([t0, t1], [1.0, 2.0])


@pytest.mark.parametrize("with_seq", [True, False],
                         ids=["seq-match", "fifo-fallback"])
def test_two_rank_edge_reconstruction(with_seq):
    result = _two_rank_fixture(with_seq)
    edge_set, recv_index = reconstruct_edges(result)
    assert edge_set.unmatched_sends == 0
    assert edge_set.unmatched_recvs == 0
    (edge,) = edge_set.edges
    assert (edge.src, edge.dst, edge.tag) == (0, 1, 7)
    assert edge.send_v == 1.0
    assert edge.arrival_v == 1.5
    assert edge.waited == pytest.approx(1.0)
    assert edge.flight == pytest.approx(0.5)
    assert edge.hidden == 0.0
    assert edge.seq == (0 if with_seq else -1)
    assert len(recv_index) == 1


def test_two_rank_critical_path():
    report = analyze_critical_path(_two_rank_fixture())
    assert report.validate() == []
    assert report.makespan == pytest.approx(2.0)
    assert report.length == pytest.approx(2.0)
    assert report.message_hops == 1
    assert report.message_time == pytest.approx(0.5)
    # Chronological pieces: rank 0's compute, the message, rank 1's
    # post-wait compute; rank 1's pre-wait compute is off-path.
    kinds = [(p.kind, p.name, p.rank) for p in report.path]
    assert kinds == [("compute", "a", 0), ("message", "msg r0->r1", 1),
                     ("compute", "c", 1)]
    a0, a1 = report.attribution
    assert (a0.compute, a0.comm, a0.idle) == \
        (pytest.approx(1.0), 0.0, pytest.approx(1.0))
    assert (a1.compute, a1.comm, a1.idle) == \
        (pytest.approx(1.0), pytest.approx(1.0), 0.0)
    fracs = report.attribution_fractions()
    assert sum(fracs.values()) == pytest.approx(1.0)


def test_unmatched_recv_counted():
    result = _two_rank_fixture()
    result.traces[1].spans[1].attrs["seq"] = 99  # no such send
    edge_set, _ = reconstruct_edges(result)
    assert edge_set.edges == []
    assert edge_set.unmatched_recvs == 1
    assert edge_set.unmatched_sends == 1
    # The walk degrades gracefully: the wait becomes local time.
    report = analyze_critical_path(result)
    assert report.unmatched_recvs == 1
    assert report.length == pytest.approx(report.makespan)


def test_untraced_result_raises():
    result = SimulationResult(values=[None], stats=[RankStats(rank=0)],
                              wall_time=0.0, traces=None)
    with pytest.raises(ReproError, match="trace=True"):
        analyze_critical_path(result)


def _ping_pong(compute, latencies):
    """Build consistent 2-rank traces for an alternating ping-pong:
    round i — rank i%2 computes ``compute[i]`` then sends (modelled
    latency ``latencies[i]``); the other rank waits for it."""
    clocks = [0.0, 0.0]
    spans = {0: [], 1: []}
    events = {0: [], 1: []}
    for i, (c, lat) in enumerate(zip(compute, latencies)):
        src, dst = i % 2, 1 - (i % 2)
        spans[src].append(
            _span(f"work{i}", "phase", clocks[src], clocks[src] + c))
        clocks[src] += c
        arrival = clocks[src] + lat
        events[src].append(EventRecord(
            name="send", cat="comm", v_ts=clocks[src], w_ts=0.0,
            attrs={"dest": dst, "tag": 0, "nbytes": 8, "seq": i,
                   "arrival": arrival}))
        start = clocks[dst]
        clocks[dst] = max(start, arrival)
        spans[dst].append(_span("recv", "comm", start, clocks[dst],
                                source=src, tag=0, nbytes=8, seq=i,
                                arrival=arrival))
    traces = [RankTrace(rank=r, spans=spans[r], events=events[r])
              for r in (0, 1)]
    return _result(traces, clocks), clocks


@settings(max_examples=60, deadline=None)
@given(
    compute=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1,
                     max_size=12),
    latencies=st.lists(st.floats(min_value=0.0, max_value=10.0),
                       min_size=12, max_size=12),
)
def test_critical_path_length_bounds(compute, latencies):
    """Length is >= the busiest rank's compute time and <= (here ==)
    the makespan, for arbitrary ping-pong schedules."""
    result, clocks = _ping_pong(compute, latencies[:len(compute)])
    report = analyze_critical_path(result)
    makespan = max(clocks)
    busy = [sum(s.v_dur for s in t.phase_spans()) for t in result.traces]
    tol = max(makespan, 1.0) * 1e-9
    assert report.length >= max(busy) - tol
    assert report.length <= makespan + tol
    # Stronger invariant of the virtual-clock model: the walk covers
    # the whole makespan, and attribution tiles it exactly per rank.
    # (validate() is not used here: an all-message schedule with zero
    # compute legitimately has no phases on the path.)
    assert report.length == pytest.approx(makespan, abs=tol)
    for a in report.attribution:
        assert a.total == pytest.approx(makespan, abs=tol)


def test_real_run_critical_path(small_traced_ard):
    fact, (n, m, p, r) = small_traced_ard
    report = analyze_critical_path(fact)
    assert report.validate() == []
    assert report.nranks == p
    assert report.edges_total > 0
    assert report.unmatched_recvs == 0
    assert report.unmatched_sends == 0
    assert report.makespan == pytest.approx(
        fact.factor_result.virtual_time
        + fact.last_solve_result.virtual_time)
    fracs = report.attribution_fractions()
    assert sum(fracs.values()) == pytest.approx(1.0, rel=1e-6)
    # Both traced segments contribute critical pieces.
    assert {p_.segment for p_ in report.path} == {"factor", "solve"}


@pytest.fixture(scope="module")
def small_traced_ard():
    from repro.core.ard import ARDFactorization
    from repro.perfmodel import PAPER_ERA_MODEL
    from repro.workloads import helmholtz_block_system, random_rhs

    n, m, p, r = 16, 2, 4, 2
    matrix, _ = helmholtz_block_system(n, m)
    b = random_rhs(n, m, r, seed=0)
    fact = ARDFactorization(matrix, nranks=p, cost_model=PAPER_ERA_MODEL,
                            trace=True)
    fact.solve(b)
    return fact, (n, m, p, r)


def test_phase_report_attaches_critpath(small_traced_ard):
    fact, _ = small_traced_ard
    report = build_phase_report(
        [("factor", fact.factor_result), ("solve", fact.last_solve_result)],
        critpath=True,
    )
    assert report.critpath is not None
    assert report.critpath.validate() == []
    assert "Critical path" in report.render()
    doc = report.to_dict()
    assert doc["critpath"]["makespan"] == pytest.approx(
        report.critpath.makespan)


def test_chrome_export_critical_track(tmp_path, small_traced_ard):
    fact, _ = small_traced_ard
    path = write_chrome_trace(tmp_path / "t.trace.json", fact,
                              critpath=True)
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    flows = [e for e in events if e.get("ph") in ("s", "f")]
    assert flows and any(e["ph"] == "f" and e.get("bp") == "e"
                         for e in flows)
    crit = [e for e in events if e.get("cat") == "critical"]
    assert crit
    names = [e for e in events
             if e.get("ph") == "M" and e["name"] == "thread_name"
             and e["args"]["name"] == "critical path"]
    assert names
    # The critical track sits above the rank tracks.
    rank_tids = {e["tid"] for e in events if e.get("cat") == "phase"}
    assert all(e["tid"] > max(rank_tids) for e in crit)


def test_chrome_export_report_with_multi_run_dict_rejected(
        tmp_path, small_traced_ard):
    fact, _ = small_traced_ard
    report = analyze_critical_path(fact)
    with pytest.raises(ReproError, match="single run"):
        write_chrome_trace(tmp_path / "t.json", {"a": fact, "b": fact},
                           critpath=report)


def test_telemetry_server_critpath_endpoint(small_traced_ard):
    fact, _ = small_traced_ard
    report = analyze_critical_path(fact)
    with TelemetryServer(lambda: {},
                         critpath_provider=lambda: {
                             "critpath": report.to_dict()}) as server:
        with urllib.request.urlopen(server.url + "/critpath") as resp:
            doc = json.loads(resp.read())
    assert doc["critpath"]["nranks"] == report.nranks
    assert doc["critpath"]["makespan"] == pytest.approx(report.makespan)
    fracs = doc["critpath"]["fractions"]
    assert sum(fracs.values()) == pytest.approx(1.0, rel=1e-6)


def test_telemetry_server_critpath_default():
    with TelemetryServer(lambda: {}) as server:
        with urllib.request.urlopen(server.url + "/critpath") as resp:
            doc = json.loads(resp.read())
    assert doc == {"critpath": None}
