#!/usr/bin/env python3
"""Strong-scaling study: RD vs ARD across simulated rank counts.

Sweeps P on a fixed problem and prints the modelled parallel runtimes
alongside the closed-form predictions from
:mod:`repro.perfmodel.predictor` — a miniature, self-contained version
of experiments recon-F3/recon-F6 (the full versions live in the
benchmark harness: ``python -m repro.harness run recon-F3``).

Run:  python examples/scaling_study.py
"""

from repro.core import ARDFactorization, distribute_matrix, distribute_rhs, rd_solve_spmd
from repro.comm import run_spmd
from repro.perfmodel import PAPER_ERA_MODEL, predict_time
from repro.util.tables import render_table
from repro.workloads import helmholtz_block_system, random_rhs


def main() -> None:
    nblocks, block_size, nrhs = 512, 8, 64
    matrix, _ = helmholtz_block_system(nblocks, block_size)
    b = random_rhs(nblocks, block_size, nrhs, seed=0)
    print(f"problem: N={nblocks}, M={block_size}, R={nrhs} "
          f"(machine model: {PAPER_ERA_MODEL.flop_rate / 1e9:.0f} Gflop/s, "
          f"{PAPER_ERA_MODEL.latency * 1e6:.1f} us latency)\n")

    rows = []
    base = None
    for p in (1, 2, 4, 8, 16, 32, 64):
        # ARD, measured in the simulator.
        fact = ARDFactorization(matrix, nranks=p, cost_model=PAPER_ERA_MODEL)
        fact.solve(b)
        ard_vt = (fact.factor_result.virtual_time
                  + fact.last_solve_result.virtual_time)
        # RD, one pass measured, scaled to R identical passes.
        chunks = distribute_matrix(matrix, p)
        d1 = distribute_rhs(b[:, :, :1], p)
        rd_pass = run_spmd(
            rd_solve_spmd, p, cost_model=PAPER_ERA_MODEL, copy_messages=False,
            rank_args=[(c, d) for c, d in zip(chunks, d1)],
        ).virtual_time
        rd_vt = rd_pass * nrhs
        pred = predict_time("ard", n=nblocks, m=block_size, p=p, r=nrhs,
                            cost_model=PAPER_ERA_MODEL)
        base = base or ard_vt
        rows.append([p, rd_vt, ard_vt, pred, rd_vt / ard_vt, base / ard_vt])

    print(render_table(
        ["P", "rd_vt_s", "ard_vt_s", "ard_predicted_s", "ard_speedup_vs_rd",
         "ard_scaling_vs_P1"],
        rows,
    ))
    print("\nRead: both solvers scale with N/P until the log P scan rounds "
          "dominate; the RD/ARD gap is the per-RHS matrix work.")


if __name__ == "__main__":
    main()
