#!/usr/bin/env python3
"""Banded systems: an Euler–Bernoulli-beam-flavoured pentadiagonal solve.

Fourth-order operators (beam bending, plate problems, high-order
compact stencils) discretize to *pentadiagonal* systems — bandwidth 2,
outside the tridiagonal world the paper treats.  The `repro.banded`
extension generalizes accelerated recursive doubling to any symmetric
block bandwidth: the affine-recurrence state grows from 2M to 2bM and
everything else (traced scan, replay, closing solve, refinement)
carries over.

This script builds an oscillatory block pentadiagonal system, solves it
for many right-hand sides with the banded ARD factorization across
simulated ranks, verifies against dense LAPACK, and shows the same
factor-once/solve-many economics as the tridiagonal case.

Run:  python examples/banded_beam.py
"""

import numpy as np

from repro.banded import BandedARDFactorization
from repro.perfmodel import PAPER_ERA_MODEL
from repro.workloads import banded_oscillatory_system, random_rhs


def main() -> None:
    nblocks, block_size, bandwidth, nrhs, nranks = 96, 4, 2, 64, 8
    matrix, info = banded_oscillatory_system(
        nblocks, block_size, bandwidth=bandwidth, seed=0
    )
    print(f"system: block pentadiagonal (b={bandwidth}), N={nblocks}, "
          f"M={block_size} ({nblocks * block_size} unknowns), "
          f"R={nrhs} right-hand sides, P={nranks} simulated ranks")
    print(f"stencil detuning delta = {info['delta']:.2e} "
          "(keeps the operator away from resonances)\n")

    b = random_rhs(nblocks, block_size, nrhs, seed=1)

    fact = BandedARDFactorization(matrix, nranks=nranks,
                                  cost_model=PAPER_ERA_MODEL)
    x = fact.solve(b)
    residual = matrix.residual(x, b)
    factor_vt = fact.factor_result.virtual_time
    solve_vt = fact.last_solve_result.virtual_time
    print(f"factor phase: {factor_vt:.3e} modelled s   "
          f"solve phase (all {nrhs} RHS): {solve_vt:.3e} modelled s")
    print(f"residual: {residual:.2e}")

    # Verify against dense LAPACK.
    dense = matrix.to_dense()
    xref = np.linalg.solve(
        dense, b.reshape(nblocks * block_size, nrhs)
    ).reshape(nblocks, block_size, nrhs)
    err = np.max(np.abs(x - xref)) / np.max(np.abs(xref))
    print(f"max relative deviation from dense LAPACK: {err:.2e}")
    assert err < 1e-9

    # The acceleration story, banded edition.
    naive_vt = nrhs * (factor_vt + solve_vt / nrhs)
    print(f"\nre-factoring per RHS would cost ~{naive_vt:.3e} modelled s "
          f"-> the factor/solve split wins ~"
          f"{naive_vt / (factor_vt + solve_vt):.0f}x at R={nrhs}.")


if __name__ == "__main__":
    main()
