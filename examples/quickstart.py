#!/usr/bin/env python3
"""Quickstart: solve a block tridiagonal system with every method.

Demonstrates the 60-second tour of the library:

1. generate a block tridiagonal system,
2. solve it with the accelerated recursive doubling (ARD) solver on a
   few simulated ranks,
3. cross-check against the sequential baselines and a dense reference,
4. reuse an ARD factorization across several right-hand-side batches,
5. read the modelled parallel timings the simulation produces.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import factor, solve
from repro.core.diagnostics import diagnose
from repro.workloads import helmholtz_block_system, random_rhs


def main() -> None:
    # A 64-block system with 4x4 blocks (256 unknowns), in the
    # bounded-growth regime where recursive doubling is accurate at any
    # length (see DESIGN.md "Non-goals / caveats").
    nblocks, block_size, nrhs = 64, 4, 8
    matrix, info = helmholtz_block_system(nblocks, block_size)
    print(f"system: {info['name']}, N={nblocks} blocks of M={block_size} "
          f"({nblocks * block_size} unknowns), R={nrhs} right-hand sides")

    checks = diagnose(matrix, warn=False)
    print(f"diagnostics: transfer growth {checks.growth:.2f} "
          f"(stable={checks.rd_stable}), min U_i rcond "
          f"{checks.min_superdiag_rcond:.2f}\n")

    b = random_rhs(nblocks, block_size, nrhs, seed=0)

    # --- one-shot solves with every method -----------------------------
    for method in ("ard", "rd", "thomas", "cyclic", "dense"):
        x, solve_info = solve(matrix, b, method=method, nranks=4,
                              return_info=True)
        vt = (f"{solve_info.virtual_time:.3e}s modelled"
              if solve_info.virtual_time is not None else "sequential")
        print(f"  {method:7s} residual={solve_info.residual:.2e}  [{vt}]")

    # --- factor once, solve many (the paper's workflow) -----------------
    print("\nfactor once / solve many with ARD on 4 simulated ranks:")
    fact = factor(matrix, method="ard", nranks=4)
    print(f"  factor phase: {fact.factor_virtual_time:.3e} modelled seconds")
    for batch in range(3):
        b_new = random_rhs(nblocks, block_size, nrhs, seed=batch + 1)
        x = fact.solve(b_new)
        assert matrix.residual(x, b_new) < 1e-9
        print(f"  solve batch {batch}: "
              f"{fact.last_solve_result.virtual_time:.3e} modelled seconds "
              f"(residual {matrix.residual(x, b_new):.1e})")
    print("\nEach extra batch pays only the cheap matrix-vector solve "
          "phase - that is the paper's O(R) acceleration.")


if __name__ == "__main__":
    main()
