#!/usr/bin/env python3
"""Multi-shot acoustic (Helmholtz) solves — the paper's target regime.

Frequency-domain wave solvers (seismic imaging, ultrasound, radar) solve
one discretized Helmholtz operator against *hundreds of sources*
("shots"): the matrix is fixed by the medium and frequency, only the
right-hand side changes per shot.  This is exactly the
"same tridiagonal matrix, R distinct right-hand sides, R ~ 1e2-1e4"
workload the paper's abstract motivates.

The script:

1. builds a 1D line-blocked Helmholtz system (N depth slabs coupled by
   M lateral points each),
2. places one impulsive source per shot,
3. solves all shots with ARD (factor once + one batched solve) and with
   naive RD (one full recursive doubling per shot) on P simulated ranks,
4. reports modelled parallel runtimes and the observed speedup against
   the paper's R/(1 + R/M) model.

Run:  python examples/acoustic_multishot.py [nshots]
"""

import sys

import numpy as np

from repro.core import ARDFactorization, distribute_matrix, distribute_rhs, rd_solve_spmd
from repro.comm import run_spmd
from repro.perfmodel import PAPER_ERA_MODEL, speedup_model
from repro.workloads import helmholtz_block_system, point_source_rhs


def main(nshots: int = 96) -> None:
    nblocks, block_size, nranks = 128, 16, 16
    matrix, _ = helmholtz_block_system(nblocks, block_size)
    print(f"medium: N={nblocks} slabs x M={block_size} lateral points, "
          f"{nshots} shots, P={nranks} simulated ranks\n")

    # One impulsive source per shot, marching across the medium.
    rng = np.random.default_rng(0)
    sources = [
        (int(rng.integers(nblocks)), int(rng.integers(block_size)), 1.0)
        for _ in range(nshots)
    ]
    b = point_source_rhs(nblocks, block_size, sources)

    # --- ARD: factor once, solve all shots in one batched pass ----------
    fact = ARDFactorization(matrix, nranks=nranks, cost_model=PAPER_ERA_MODEL)
    x = fact.solve(b)
    ard_vt = fact.factor_result.virtual_time + fact.last_solve_result.virtual_time
    residual = matrix.residual(x, b)
    print(f"ARD : factor {fact.factor_result.virtual_time:.3e}s + "
          f"solve {fact.last_solve_result.virtual_time:.3e}s "
          f"= {ard_vt:.3e}s modelled   (residual {residual:.1e})")

    # --- naive RD: one full pass per shot (measure one, scale by R) -----
    chunks = distribute_matrix(matrix, nranks)
    d1 = distribute_rhs(b[:, :, :1], nranks)
    rd_result = run_spmd(
        rd_solve_spmd, nranks, cost_model=PAPER_ERA_MODEL, copy_messages=False,
        rank_args=[(c, d) for c, d in zip(chunks, d1)],
    )
    rd_vt = rd_result.virtual_time * nshots
    print(f"RD  : {rd_result.virtual_time:.3e}s per shot x {nshots} shots "
          f"= {rd_vt:.3e}s modelled")

    speedup = rd_vt / ard_vt
    print(f"\nspeedup ARD over RD: {speedup:.1f}x "
          f"(paper's model R/(1+R/M) = "
          f"{speedup_model(block_size, nshots):.1f}x)")

    # Physical sanity: energy decays away from each source.
    shot = 0
    field = np.abs(x[:, :, shot]).sum(axis=1)
    src_block = sources[shot][0]
    print(f"\nshot 0 source at slab {src_block}: field energy near source "
          f"{field[src_block]:.3f}, far field {field[(src_block + nblocks // 2) % nblocks]:.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 96)
