#!/usr/bin/env python3
"""Solver selection guide: which method for which matrix?

Sweeps the library's workload generators through every factorizing
solver and prints accuracy plus modelled time, together with the
diagnostics that predict the outcome — a practical map of each method's
stability domain:

- **ARD/RD** (recursive doubling): fastest distributed methods, but only
  accurate while the transfer-product growth is bounded (oscillatory /
  Helmholtz-like systems). Error ~ machine-eps x growth.
- **SPIKE**: distributed and backward stable for block diagonally
  dominant systems — exactly the regime that breaks recursive doubling.
- **Thomas / cyclic reduction**: sequential fallbacks, stable for
  dominant systems of any length.

Run:  python examples/solver_selection.py
"""

import numpy as np

from repro import factor
from repro.core.diagnostics import diagnose
from repro.exceptions import ReproError
from repro.perfmodel import PAPER_ERA_MODEL
from repro.util.tables import render_table
from repro.workloads import (
    absorbing_helmholtz_system,
    heat_implicit_system,
    helmholtz_block_system,
    multigroup_diffusion_system,
    poisson_block_system,
    random_rhs,
)


def main() -> None:
    n, m, p, r = 96, 6, 8, 16
    workloads = [
        ("helmholtz (oscillatory)", helmholtz_block_system, {}),
        ("absorbing helmholtz", absorbing_helmholtz_system, {}),
        ("poisson (dominant)", poisson_block_system, {}),
        ("implicit heat (dominant)", heat_implicit_system, {}),
        ("multigroup (weakly dom.)", multigroup_diffusion_system,
         {"seed": 0, "coupling": 2.0, "absorption": 0.1}),
    ]
    rows = []
    for name, gen, kwargs in workloads:
        matrix, _ = gen(n, m, **kwargs)
        checks = diagnose(matrix, warn=False)
        b = random_rhs(n, m, r, seed=1).astype(matrix.dtype)
        for method in ("ard", "spike", "thomas"):
            try:
                fact = factor(matrix, method=method, nranks=p,
                              cost_model=PAPER_ERA_MODEL)
                x = fact.solve(b)
                residual = matrix.residual(x, b)
                verdict = "ok" if residual < 1e-8 else "INACCURATE"
            except ReproError as exc:
                residual, verdict = float("nan"), type(exc).__name__
            rows.append([name, f"{checks.growth:.1e}", method,
                         residual, verdict])
    print(render_table(
        ["workload", "growth", "method", "residual", "verdict"], rows,
        title=f"N={n}, M={m}, P={p}, R={r}  "
              "(growth = transfer-product growth from diagnose())",
    ))
    print(
        "\nRule of thumb: growth near 1 -> use ARD (fastest, distributed);\n"
        "growth large -> use SPIKE (distributed) or Thomas (sequential).\n"
        "repro.core.diagnostics.diagnose() measures growth for you."
    )


if __name__ == "__main__":
    main()
