#!/usr/bin/env python3
"""Implicit heat-equation time stepping with stability-aware method choice.

Backward-Euler time stepping solves the *same* operator
``(I + dt * kappa * Laplacian)`` at every step with a new right-hand
side — the sequential cousin of the paper's multi-RHS workload (the RHS
of step k depends on the solution of step k-1, so steps cannot be
batched, but the factorization is still reused).

This example also shows the library's recommended safety workflow: the
heat operator is strongly diagonally dominant, which makes its transfer
products grow exponentially, so recursive doubling is *outside its
stability domain* here (DESIGN.md, "Non-goals / caveats").
``repro.core.diagnostics.diagnose`` detects that, and we pick the
factored block Thomas solver instead — same factor-once / solve-many
API, unconditionally stable for this matrix class.

Run:  python examples/heat_implicit_timestepping.py
"""

import numpy as np

from repro import factor
from repro.core.diagnostics import diagnose
from repro.workloads import heat_implicit_system


def main() -> None:
    # 2D grid: nblocks rows x block_size columns, dt chosen for accuracy.
    nblocks, block_size = 48, 24
    dt, steps = 0.05, 40
    matrix, info = heat_implicit_system(nblocks, block_size, dt=dt)
    print(f"operator: backward-Euler heat, {nblocks}x{block_size} grid, "
          f"dt={dt}, {steps} steps")

    # --- stability-aware method selection -------------------------------
    checks = diagnose(matrix, warn=False)
    if checks.rd_feasible and checks.rd_stable:
        method = "ard"
    else:
        method = "thomas"
    print(f"diagnostics: growth={checks.growth:.2e}, dominance="
          f"{checks.dominance:.2f} -> method={method!r}\n")

    fact = factor(matrix, method=method)

    # Initial condition: a hot square in the centre of the plate.
    u = np.zeros((nblocks, block_size))
    u[nblocks // 3: 2 * nblocks // 3, block_size // 3: 2 * block_size // 3] = 100.0
    total0 = u.sum()

    # March in time: each step solves  A u_{k+1} = u_k  (homogeneous BCs).
    peak_history = []
    for step in range(steps):
        u = fact.solve(u[:, :, None])[:, :, 0]
        peak_history.append(u.max())

    print("step   peak temperature")
    for step in range(0, steps, 8):
        print(f"{step:4d}   {peak_history[step]:10.3f}")
    print(f"{steps:4d}   {peak_history[-1]:10.3f}")

    # Physical sanity checks: diffusion smooths monotonically and
    # (with absorbing boundaries) never heats anything above the start.
    assert all(a >= b for a, b in zip(peak_history, peak_history[1:])), \
        "peak temperature must decay monotonically"
    assert u.sum() < total0, "heat must leak through the boundaries"
    assert u.min() > -1e-8, "diffusion cannot produce negative temperatures"
    print("\nsanity checks passed: monotone decay, boundary losses, "
          "non-negativity.")


if __name__ == "__main__":
    main()
