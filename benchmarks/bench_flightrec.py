"""Benchmarks of the always-on flight recorder's cost.

The recorder (:mod:`repro.obs.flightrec`) runs on every rank of every
solve, always — so its budget is explicit: < 3% of solve wall time at
the canonical bench shape (docs/INCIDENTS.md).  Three questions, one
benchmark each: what does a single hot-path ring record cost (the
per-message price), what does a representative ARD factor+solve cost
with the recorder off vs on, and does the paired on/off ratio stay
inside the 3% budget?  The ratio is also recorded as
``obs.flightrec_overhead`` by ``python -m repro.harness bench-history``
and gated against its rolling median by :mod:`repro.obs.regress`.
Run with ``REPRO_BENCH_SCALE=full`` for the paper-scale problem.
"""

import os
import time

import numpy as np

from repro.config import config_context
from repro.core.ard import ARDFactorization
from repro.obs import FlightRecorder
from repro.workloads import helmholtz_block_system, random_rhs

SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")
N, M, P, R = (256, 8, 8, 32) if SCALE == "full" else (64, 4, 4, 8)

REC_REPS = 1000


def test_record_hot_path(benchmark):
    """Cost of 1000 send-record + retire pairs on a full-size ring.

    This is the exact sequence the runtime's send path executes per
    message; no allocation happens (the ring is preallocated), so the
    per-pair cost should sit in the sub-microsecond range."""
    rec = FlightRecorder(0, 2048)

    def run():
        for i in range(REC_REPS):
            rec.record_send(1, 0, i, 128)
            rec.mark_consumed(i)
        return rec

    out = benchmark(run)
    assert out.dropped == 0


def _system():
    matrix, _ = helmholtz_block_system(N, M)
    return matrix, random_rhs(N, M, R, seed=0)


def test_ard_solve_flightrec_off(benchmark):
    matrix, b = _system()

    def run():
        with config_context(flightrec=False):
            return ARDFactorization(matrix, nranks=P).solve(b)

    x = benchmark(run)
    assert x.shape == b.shape


def test_ard_solve_flightrec_on(benchmark):
    matrix, b = _system()

    def run():
        with config_context(flightrec=True):
            return ARDFactorization(matrix, nranks=P).solve(b)

    x = benchmark(run)
    assert x.shape == b.shape
    assert np.isfinite(x).all()


def test_overhead_budget_under_3_percent():
    """Recorder-on ARD factor+solve stays within the < 3% budget.

    Scheduler/BLAS noise dwarfs the recorder at these shapes, so the
    measurement follows the disabled-tracing gate's protocol
    (``tests/test_quality_gates.py``): time *paired* interleaved
    off/on rounds and take the best (minimum) on/off ratio — one quiet
    pair reveals the true ratio, while a real recorder regression
    inflates every pair.
    """
    matrix, b = _system()

    def run():
        ARDFactorization(matrix, nranks=P).solve(b)

    def timed():
        t0 = time.perf_counter_ns()
        run()
        return time.perf_counter_ns() - t0

    run()  # warm up
    ratios = []
    for _ in range(12):
        with config_context(flightrec=False):
            off = timed()
        with config_context(flightrec=True):
            on = timed()
        ratios.append(on / off)
    best = min(ratios)
    assert best < 1.03, (
        f"flight-recorder overhead {best - 1:.1%} exceeds the 3% budget "
        f"in every one of {len(ratios)} paired rounds at shape "
        f"(N={N}, M={M}, P={P}, R={R})"
    )
