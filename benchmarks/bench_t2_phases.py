"""recon-T2 — per-phase cost breakdown of RD vs ARD.

Shows where each algorithm spends its modelled work: RD's scan/build
phases carry M^3 terms per RHS; ARD's solve-side phases are all M^2 R.
"""

from conftest import run_and_save


def test_t2_phase_breakdown(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("recon-T2", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Shares must sum to ~1 within every (method, P) group, and ARD's
    # factor phase must be dominated by the local M^3 work at low P.
    groups: dict[tuple[str, int], float] = {}
    first_p = min(r[1] for r in result.rows)
    local_share = 0.0
    for method, p, phase, _flops, share, _msgs, _bytes in result.rows:
        groups[(method, p)] = groups.get((method, p), 0.0) + share
        if method == "ard_factor" and p == first_p and phase in ("build", "aggregate"):
            local_share += share
    for total in groups.values():
        assert abs(total - 1.0) < 1e-6
    assert local_share > 0.5
