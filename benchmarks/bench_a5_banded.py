"""abl-A5 — the acceleration generalizes to block banded systems.

For every bandwidth the factor-once/solve-many split beats re-running
the full factorization per right-hand side by ~R-fold, exactly as in
the tridiagonal case the paper treats (which is bandwidth 1 here).
"""

from conftest import run_and_save


def test_a5_banded_generalization(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("abl-A5", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    for bw, naive, _f, _s, accel, speedup, residual in result.rows:
        assert residual < 1e-9, (bw, residual)
        assert speedup > 3.0, (bw, speedup)
        assert accel < naive
