"""recon-F1 — runtime vs number of right-hand sides (the headline figure).

RD's modelled runtime grows linearly in R with an O(M^3) slope; ARD pays
the O(M^3) work once and then grows with an O(M^2) slope, opening the
paper's O(R) gap.
"""

from conftest import run_and_save


def test_f1_runtime_vs_r(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("recon-F1", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    rs = result.column("R")
    speedups = result.column("speedup")
    rd = result.column("rd_vt")
    ard = result.column("ard_total_vt")
    # RD grows ~linearly in R.
    assert rd[-1] / rd[0] > 0.5 * (rs[-1] / rs[0])
    # ARD grows far slower than R.
    assert ard[-1] / ard[0] < 0.5 * (rs[-1] / rs[0])
    # The speedup grows monotonically (allowing small measurement wiggle).
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 2.0
