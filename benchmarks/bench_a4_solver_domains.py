"""abl-A4 — solver stability domains (SPIKE extension).

The partitioned SPIKE solver extends the library beyond recursive
doubling's stability domain: on strongly diagonally dominant systems
(exponential transfer growth) ARD fails or loses accuracy while SPIKE
solves at distributed scale; on oscillatory systems ARD is the fastest
and SPIKE still works wherever its local Thomas factorization exists.
"""

import math

from conftest import SCALE, run_and_save


def test_a4_solver_domains(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("abl-A4", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    rows = {(r[0], r[2]): r for r in result.rows}

    # In the oscillatory regime everyone succeeds and ARD is accurate.
    assert rows[("oscillatory", "ard")][5] == "ok"
    assert rows[("oscillatory", "ard")][4] < 1e-10
    assert rows[("oscillatory", "spike")][4] < 1e-10

    # In the dominant regime SPIKE and Thomas are accurate at scale...
    assert rows[("dominant", "spike")][5] == "ok"
    assert rows[("dominant", "spike")][4] < 1e-10
    assert rows[("dominant", "thomas")][4] < 1e-10
    # ...while ARD either raises (overflowed closing system) or returns
    # a large residual — it is outside its documented domain.
    ard_dom = rows[("dominant", "ard")]
    assert ard_dom[5] != "ok" or math.isnan(ard_dom[4]) or ard_dom[4] > 1e-8

    # At full scale (compute-dominated), SPIKE's distributed solve beats
    # sequential Thomas in modelled time in the dominant regime; the tiny
    # smoke problem is latency-bound and not comparable.
    if SCALE == "full":
        assert rows[("dominant", "spike")][3] < rows[("dominant", "thomas")][3]
