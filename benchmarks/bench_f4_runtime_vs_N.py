"""recon-F4 — runtime vs system length N (work-term scaling)."""

from conftest import SCALE, run_and_save


def test_f4_runtime_vs_n(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("recon-F4", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    ns = result.column("N")
    rd = result.column("rd_vt")
    ard = result.column("ard_vt")
    # Runtimes grow with N for both algorithms...
    assert rd == sorted(rd)
    assert ard == sorted(ard)
    # ...and in the large-N tail (the N/P-dominated regime) the growth is
    # close to linear: the last doubling of N scales time by ~2x.
    if SCALE == "full":
        tail = (rd[-1] / rd[-2]) / (ns[-1] / ns[-2])
        assert 0.6 < tail < 1.4, tail
    # The RD/ARD gap persists at every N.
    for a, b in zip(rd, ard):
        assert a > b
