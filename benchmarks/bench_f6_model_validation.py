"""recon-F6 — analytic model vs simulated virtual time (parity data)."""

from conftest import run_and_save


def test_f6_model_parity(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("recon-F6", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Every point within a factor of ~2.5 (the model serializes phases the
    # simulator may overlap) and trends preserved per method.
    for ratio in result.column("ratio"):
        assert 0.35 < ratio < 2.5
