"""recon-F6 — analytic model vs simulated virtual time (parity data)."""

import datetime
import platform

import numpy as np
from conftest import SCALE, run_and_save

from repro.harness.bench_history import (
    BENCH_HISTORY_SCHEMA_VERSION,
    append_record,
)


def test_f6_model_parity(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("recon-F6", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    ratios = result.column("ratio")
    # Every point within a factor of ~2.5 (the model serializes phases the
    # simulator may overlap) and trends preserved per method.
    for ratio in ratios:
        assert 0.35 < ratio < 2.5
    # Record model drift into the perf-trajectory history so the
    # regression gate (repro.obs.regress) watches predictor quality the
    # same way it watches throughput — calibration changes that degrade
    # predicted-vs-measured parity surface as a rising metric.
    model_error = float(np.median([abs(np.log(r)) for r in ratios]))
    append_record(results_dir / "BENCH_history.jsonl", {
        "schema_version": BENCH_HISTORY_SCHEMA_VERSION,
        "written_at": datetime.datetime.now(
            datetime.timezone.utc).isoformat(),
        "scale": SCALE,
        "metrics": {"perfmodel.model_error": model_error},
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    })
