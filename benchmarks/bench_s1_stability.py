"""recon-S1 — stability domain: ARD error tracks eps x transfer growth.

Not a figure from the paper's abstract, but the quantitative form of the
recursive doubling stability caveat the reproduction documents: the
relative error of the recurrence-based solvers follows
``machine epsilon x transfer-product growth`` across workloads, which is
machine precision for bounded-growth systems at any N.
"""

from conftest import run_and_save


def test_s1_error_tracks_growth(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("recon-S1", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert all(result.column("within_1e3x"))
    # Bounded-growth workloads must reach near machine precision.
    for workload, _n, _m, growth, err, *_ in result.rows:
        if growth < 1e2:
            assert err < 1e-11, (workload, err)
