"""abl-A2 — RHS batching ablation for the ARD solve phase.

Solving R right-hand sides in one batched call amortizes the per-call
latency (scan rounds, closing broadcast); tiny batches pay it R times.
"""

from conftest import run_and_save


def test_a2_batching(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("abl-A2", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    batches = result.column("batch")
    vts = result.column("total_solve_vt")
    # Larger batches never cost more modelled time; the extremes differ
    # measurably.
    assert vts == sorted(vts, reverse=True)
    assert vts[0] > 1.2 * vts[-1], (batches, vts)
