"""Execution-backend benchmark: processes vs threads on ARD.

The thread backend's simulated ranks share the GIL, so its wall clock
is a serialized sum and only the *virtual* time is a parallel number;
the process backend (:mod:`repro.comm.mp`) runs each rank as a spawned
worker on its own core, with NumPy payloads crossing rank boundaries
through shared-memory segments (zero-copy receive).  This suite runs
the same ARD factor+solve under both backends and asserts the three
claims the backend PR makes:

- **speedup** — >= 2x wall clock over threads at the acceptance point
  (N=4096, M=8, P=4 at full scale) on hosts with >= 4 cores.  Skipped
  below 4 cores: with fewer cores than ranks the processes backend
  cannot beat the GIL by the asserted margin.
- **zero-copy hot path** — every rank's solve-phase stats show
  shared-memory transfers (``shm_sends > 0``) and no deepcopy
  fallbacks (``payload_deepcopies == 0``): the scan messages moved as
  out-of-band buffers, never through a serialize-the-world slow path.
- **parity** — both backends return bitwise-identical solutions and
  modelled virtual times: the backend changes where code runs, never
  what it computes.

Measurements land in ``results/BENCH_backends.json``; the
perf-trajectory record (``harness bench-history``) carries the speedup
as ``backends.process_speedup`` when the host can measure it.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.comm.mp import shutdown_pool
from repro.core.ard import ARDFactorization
from repro.workloads import helmholtz_block_system, random_rhs

from conftest import SCALE

#: Acceptance point (full scale) per the backend PR; smoke keeps the
#: same rank geometry on a problem that fits in CI seconds.
if SCALE == "full":
    N, M, P, R = 4096, 8, 4, 8
else:
    N, M, P, R = 512, 8, 4, 8

#: Asserted wall-clock speedup floor of processes over threads (>= 4
#: cores only); measured headroom on a 4-core reference host is ~2.6x.
PROCESS_SPEEDUP_FLOOR = 2.0

_ENOUGH_CORES = (os.cpu_count() or 1) >= 4


@pytest.fixture(scope="module")
def matrix_and_rhs():
    matrix, _ = helmholtz_block_system(N, M)
    b = random_rhs(N, M, R, seed=0)
    return matrix, b


@pytest.fixture(scope="module")
def backend_results(results_dir):
    """Accumulates measurements; written once, pool torn down after."""
    data = {"params": {"n": N, "m": M, "p": P, "r": R, "scale": SCALE,
                       "cpu_count": os.cpu_count()}}
    yield data
    path = results_dir / "BENCH_backends.json"
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    shutdown_pool()


def _factor_solve(matrix, b, backend):
    """One full factor+solve; returns (wall_s, factorization, x)."""
    t0 = time.perf_counter()
    fact = ARDFactorization(matrix, nranks=P, backend=backend)
    x = fact.solve(b)
    return time.perf_counter() - t0, fact, x


class TestZeroCopy:
    def test_scan_hot_path_is_zero_copy(self, matrix_and_rhs,
                                        backend_results):
        matrix, b = matrix_and_rhs
        _, fact, _ = _factor_solve(matrix, b, "processes")
        for result, phase in ((fact.factor_result, "factor"),
                              (fact.last_solve_result, "solve")):
            assert result.backend == "processes"
            stats = result.stats
            shm_sends = sum(s.shm_sends for s in stats)
            deepcopies = sum(s.payload_deepcopies for s in stats)
            assert shm_sends > 0, (
                f"{phase}: no shared-memory transfers recorded — the "
                "payload path fell back to in-band pickling")
            assert deepcopies == 0, (
                f"{phase}: {deepcopies} deepcopy fallback(s) on the "
                "hot path — some payload serialized without "
                "out-of-band buffers")
            backend_results[f"zero_copy.{phase}"] = {
                "shm_sends": shm_sends,
                "shm_bytes": sum(s.shm_bytes for s in stats),
                "payload_deepcopies": deepcopies,
            }


class TestParity:
    def test_backends_agree_bitwise(self, matrix_and_rhs, backend_results):
        matrix, b = matrix_and_rhs
        _, fact_t, x_t = _factor_solve(matrix, b, "threads")
        _, fact_p, x_p = _factor_solve(matrix, b, "processes")
        assert np.array_equal(x_t, x_p), (
            "processes backend produced different solution bits")
        vt_t = (fact_t.factor_result.virtual_time
                + fact_t.last_solve_result.virtual_time)
        vt_p = (fact_p.factor_result.virtual_time
                + fact_p.last_solve_result.virtual_time)
        assert vt_t == pytest.approx(vt_p, rel=1e-12), (
            "modelled virtual time diverged across backends")
        backend_results["parity"] = {"virtual_time_threads": vt_t,
                                     "virtual_time_processes": vt_p}


class TestSpeedup:
    @pytest.mark.skipif(
        not _ENOUGH_CORES,
        reason=f"processes-vs-threads speedup needs >= 4 cores "
               f"(host has {os.cpu_count()})")
    def test_process_backend_speedup(self, matrix_and_rhs, backend_results):
        matrix, b = matrix_and_rhs
        _factor_solve(matrix, b, "processes")  # warm pool + worker imports
        wall = {}
        for backend in ("processes", "threads"):
            wall[backend] = min(
                _factor_solve(matrix, b, backend)[0] for _ in range(2))
        speedup = wall["threads"] / wall["processes"]
        backend_results["speedup"] = {
            "threads_wall_s": wall["threads"],
            "processes_wall_s": wall["processes"],
            "process_speedup": speedup,
        }
        assert speedup >= PROCESS_SPEEDUP_FLOOR, (
            f"processes backend is {speedup:.2f}x threads on ARD "
            f"(N={N}, M={M}, P={P}), below the "
            f"{PROCESS_SPEEDUP_FLOOR}x floor")

    def test_wall_clock_is_recorded(self, matrix_and_rhs, backend_results):
        """Even below 4 cores, record the honest numbers (no assert)."""
        matrix, b = matrix_and_rhs
        wall_p, fact, _ = _factor_solve(matrix, b, "processes")
        wall_t, _, _ = _factor_solve(matrix, b, "threads")
        backend_results["recorded"] = {
            "threads_wall_s": wall_t,
            "processes_wall_s": wall_p,
            "process_speedup": wall_t / wall_p if wall_p > 0 else 0.0,
            "asserted": _ENOUGH_CORES,
        }
        assert fact.last_solve_result.wall_time > 0
