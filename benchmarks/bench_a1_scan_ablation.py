"""abl-A1 — scan-algorithm ablation inside the prefix stage.

Compares the recursive-doubling (Kogge-Stone) schedule the paper builds
on against Blelloch's work-efficient tree scan and the linear-depth
pipeline baseline, on identical affine-pair payloads.
"""

from collections import defaultdict

from conftest import run_and_save


def test_a1_scan_ablation(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("abl-A1", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert all(result.column("matches_ks"))
    by_p = defaultdict(dict)
    for p, scan, vt, _msgs, _ok in result.rows:
        by_p[p][scan] = vt
    largest = max(by_p)
    # At the largest rank count, log-depth schedules beat the pipeline.
    assert by_p[largest]["kogge_stone"] < by_p[largest]["pipeline"]
