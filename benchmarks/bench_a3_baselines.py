"""abl-A3 — baseline cross-over: ARD vs RD vs cyclic reduction vs Thomas.

Shows the context the paper's contribution lives in: sequential Thomas
wins at P=1 (no parallel overheads), the parallel methods overtake it as
P grows, and ARD dominates naive RD everywhere multi-RHS work exists.
"""

from conftest import run_and_save


def test_a3_baseline_crossover(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("abl-A3", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    ps = result.column("P")
    ard = result.column("ard_vt")
    rd = result.column("rd_vt")
    thomas = result.column("thomas_vt")
    # ARD beats naive RD at every P.
    for a, r in zip(ard, rd):
        assert a < r
    # ARD improves with P and eventually beats the sequential baseline.
    assert ard[-1] < ard[0]
    assert ard[-1] < thomas[-1], (ps, ard, thomas)
