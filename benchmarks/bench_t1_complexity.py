"""recon-T1 — complexity table: predicted vs instrumented flop counts.

Regenerates the paper's complexity analysis as an executable table: for
every solver, the closed-form critical-path flop count against the
instrumented count from a real (simulated-parallel) run.
"""

from conftest import run_and_save


def test_t1_complexity_table(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("recon-T1", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # The analysis must predict the implementation within 15%.
    for ratio in result.column("ratio"):
        assert 0.85 < ratio < 1.15
