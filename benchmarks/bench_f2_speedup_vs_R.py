"""recon-F2 — speedup vs R for several block sizes.

The measured ARD-over-RD speedup must follow the paper's shape: linear
growth in R, saturating near Theta(M) — larger blocks keep gaining
longer.
"""

from collections import defaultdict

from conftest import SCALE, run_and_save


def test_f2_speedup_saturation(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("recon-F2", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    by_m = defaultdict(list)
    for m, r, _rd, _ard, speedup, model in result.rows:
        by_m[m].append((r, speedup, model))
    for m, series in by_m.items():
        series.sort()
        speeds = [s for _, s, _ in series]
        # Monotone growth in R for each M.
        assert speeds == sorted(speeds), f"speedup not monotone for M={m}"
        # Measured speedup at least tracks the flop-only model: latency
        # amortization can only help ARD further.
        for r, speedup, model in series:
            if r >= 8:
                assert speedup > 0.7 * model, (m, r, speedup, model)
    if SCALE == "full":
        # At the largest R every M must have reached at least its
        # flop-model asymptote R/(1+R/M) -> M (latency amortization can
        # push the measured value above it, never below).
        for m, series in by_m.items():
            _r, speedup, model = series[-1]
            assert speedup > 0.8 * model, (m, speedup, model)
        # And saturation is visible: the last doubling of R gains < 35%.
        for m, series in by_m.items():
            if len(series) >= 2 and series[-1][0] >= 1024:
                assert series[-1][1] < 1.35 * series[-2][1], (m, series[-2:])
