"""recon-F7 — real wall-clock confirmation on this host (P=1).

Unlike the virtual-time figures, this one measures actual seconds: the
aggregate flop-work advantage of ARD over naive RD is directly visible
on one core, independent of any machine model.
"""

from conftest import run_and_save


def test_f7_wallclock_speedup(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("recon-F7", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    for m, r, rd_wall, ard_wall, speedup in result.rows:
        assert rd_wall > 0 and ard_wall > 0
        # Real seconds: ARD must win on every configuration.
        assert speedup > 1.0, (m, r, speedup)
