"""recon-S2 — iterative refinement extends the stability domain.

Companion to recon-S1: on systems whose transfer growth would cost ARD
k digits, each refinement round (one extra cheap solve phase) wins
those digits back geometrically while ``eps * growth < 1``.
"""

import math

from conftest import run_and_save


def test_s2_refinement_domain(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("recon-S2", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    for row in result.rows:
        n, growth, e0, e1, e2, e3, status = row
        if status != "ok":
            continue
        rho = 2.3e-16 * growth
        if rho < 1e-2:
            # Convergent regime: refinement must reach near machine
            # precision and never make things worse.
            assert e3 < 1e-11, (n, e3)
            assert e1 <= e0 * 1.01 or math.isclose(e1, e0, rel_tol=1e-6)
