"""Planner acceptance benchmark: regret and the never-lose guarantee.

Not a paper figure: this is the acceptance gate for the autotuned
solver planner (``repro.perfmodel.planner``, docs/PLANNER.md).  At the
three canonical bench shapes from ``bench_kernels.py`` — the (512, 8)
service shape at streamed and monolithic RHS widths, and the
monolithic width again at 16 ranks (where BENCH_kernels.json recorded
monolithic ARD regressing to 0.75x of seed) — it:

- measures the *entire* candidate portfolio once (best-of-k wall
  time), builds a measured-provenance :class:`TuningTable` from those
  numbers, and plans against it.  The planner's time is then *defined*
  as the measured time of the configuration it chose, so ``regret =
  chosen / best-of-portfolio`` is exactly 1.0 whenever the planner
  picks the measured argmin — the assertion verifies planner logic
  (ranking, guard, table lookup), not host timing noise;
- asserts ``planner.regret <=`` :data:`REGRET_CEILING` at every shape
  (the same ceiling :mod:`repro.obs.regress` gates in bench-history);
- asserts the monolithic shapes recover to >= 1.0x of the seed
  configuration (``scipy_loop`` + ``sequential``) under
  ``method="auto"`` — the seed path is itself in the portfolio, so a
  planner that ranks correctly can never lose to it;
- runs one honest end-to-end ``solve(method="auto")`` with the table
  installed to confirm the dispatch path (plan stamped into
  ``SolveInfo``, config overrides applied) and records — not asserts —
  its wall time and the one-shot planning overhead.

Persists ``results/BENCH_planner.json``.  ``pytest
benchmarks/bench_planner.py`` runs the suite; timing is manual
best-of-k, unaffected by ``--benchmark-disable``.
"""

import json
import time

import pytest

from repro.config import TUNABLE_THRESHOLDS
from repro.core.api import solve
from repro.perfmodel.planner import (
    TuneEntry,
    TuningTable,
    _candidates,
    _measure_config,
    host_fingerprint,
    plan,
    set_default_table,
)
from repro.workloads import helmholtz_block_system, random_rhs

#: Canonical shapes (n, m, p, r): bench_kernels' streamed and
#: monolithic service points plus the 16-rank monolithic point.
SHAPES = ((512, 8, 4, 16), (512, 8, 4, 256), (512, 8, 16, 256))

#: Shapes where monolithic ARD regressed under the new kernel defaults
#: (results/BENCH_kernels.json ``mono_speedup`` 0.75x) — ``auto`` must
#: recover them to >= 1.0x of the seed configuration.
MONO_SHAPES = frozenset({(512, 8, 4, 256), (512, 8, 16, 256)})

#: Same ceiling the bench-history gate enforces on ``planner.regret``.
REGRET_CEILING = 1.15

#: The pre-vectorization seed configuration, as a portfolio config key
#: (method, schedule, comm backend, recurrence mode, blockops backend).
SEED_CONFIG = ("ard", "kogge_stone", "threads", "sequential", "scipy_loop")

#: Fixed baselines the seeded bench-history record compares auto
#: against: streamed ARD under the shipped kernel defaults (the
#: never-lose reference) and plain RD.
ARD_REF_CONFIG = ("ard", "kogge_stone", "threads", "auto", "batched")
RD_CONFIG = ("rd", "kogge_stone", "threads", "auto", "batched")

REPS = 3


def _config_key(obj):
    """(method, schedule, comm, recurrence, blockops) of a Plan/dict."""
    get = obj.get if isinstance(obj, dict) else lambda k: getattr(obj, k)
    return tuple(get(k) for k in ("method", "schedule", "comm_backend",
                                  "recurrence_mode", "blockops_backend"))


@pytest.fixture(scope="module")
def portfolio():
    """Measured wall time of every portfolio config at every shape.

    Returns ``(times, table)``: ``times[shape][config_key]`` in wall
    seconds (best of :data:`REPS`), and one :class:`TuningTable`
    holding all of it with ``provenance="measured"`` — the ground
    truth the planner is judged against.
    """
    times = {}
    entries = []
    for (n, m, p, r) in SHAPES:
        per_shape = {}
        for cand in _candidates(p):
            wall = _measure_config(n, m, p, r, "float64", cand, REPS)
            per_shape[_config_key(cand)] = wall
            entries.append(TuneEntry(
                n=n, m=m, p=p, r=r, dtype="float64",
                method=cand["method"], schedule=cand["schedule"],
                comm_backend=cand["comm_backend"],
                recurrence_mode=cand["recurrence_mode"],
                blockops_backend=cand["blockops_backend"],
                time=wall, provenance="measured",
            ))
        times[(n, m, p, r)] = per_shape
    table = TuningTable(host=host_fingerprint(),
                        thresholds=dict(TUNABLE_THRESHOLDS),
                        entries=tuple(entries))
    return times, table


@pytest.fixture(scope="module")
def planner_results(results_dir):
    """Accumulates each test's measurements; written once at teardown."""
    data = {}
    yield data
    path = results_dir / "BENCH_planner.json"
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


class TestPlannerRegret:
    def test_regret_and_mono_recovery(self, portfolio, planner_results):
        times, table = portfolio
        rows = []
        for shape in SHAPES:
            n, m, p, r = shape
            per_shape = times[shape]
            chosen = plan(n, m, p, r, table=table)
            auto_s = per_shape[_config_key(chosen)]
            best_s = min(per_shape.values())
            seed_s = per_shape[SEED_CONFIG]
            regret = auto_s / best_s
            recovery = seed_s / auto_s
            rows.append({
                "n": n, "m": m, "p": p, "r": r,
                "chosen": "/".join(_config_key(chosen)),
                "provenance": chosen.provenance,
                "clamped": chosen.clamped,
                "auto_s": auto_s, "best_s": best_s, "seed_s": seed_s,
                "ard_ref_s": per_shape[ARD_REF_CONFIG],
                "rd_s": per_shape[RD_CONFIG],
                "regret": regret, "recovery_vs_seed": recovery,
            })
            assert regret <= REGRET_CEILING, (
                f"planner regret at (n,m,p,r)={shape} is {regret:.3f} "
                f"(chose {_config_key(chosen)}), above the "
                f"{REGRET_CEILING} ceiling"
            )
            if shape in MONO_SHAPES:
                assert recovery >= 1.0, (
                    f"method='auto' at the monolithic shape {shape} is "
                    f"{recovery:.2f}x the seed configuration — the planner "
                    f"lost to the path it was built to recover"
                )
        planner_results["regret"] = rows


class TestAutoDispatch:
    def test_solve_auto_end_to_end(self, portfolio, planner_results):
        """The real ``method="auto"`` path with the table installed:
        the plan is resolved, stamped into ``SolveInfo``, and matches
        the direct :func:`plan` call; the end-to-end wall time and the
        one-shot planning overhead are recorded, not asserted (they
        include real host noise)."""
        times, table = portfolio
        n, m, p, r = shape = (512, 8, 4, 256)
        expected = plan(n, m, p, r, table=table)

        mat, _ = helmholtz_block_system(n, m)
        rhs = random_rhs(n, m, nrhs=r, seed=0)
        set_default_table(table)
        try:
            t0 = time.perf_counter()
            x, info = solve(mat, rhs, method="auto", nranks=p,
                            return_info=True)
            first_call_s = time.perf_counter() - t0
            assert info.plan is not None
            assert info.method == expected.method
            assert _config_key(info.plan) == _config_key(expected)
            best = float("inf")
            for _ in range(REPS):
                t0 = time.perf_counter()
                solve(mat, rhs, method="auto", nranks=p)
                best = min(best, time.perf_counter() - t0)
        finally:
            set_default_table(None)
        planner_results["auto_dispatch"] = {
            "n": n, "m": m, "p": p, "r": r,
            "chosen": "/".join(_config_key(info.plan)),
            "auto_wall_s": best,
            "first_call_s": first_call_s,
            "portfolio_best_s": min(times[shape].values()),
            "seed_s": times[shape][SEED_CONFIG],
        }
