"""recon-F5 — runtime vs block size M: the M^3 vs M^2 separation."""

from conftest import run_and_save


def test_f5_runtime_vs_m(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("recon-F5", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    ms = result.column("M")
    rd = result.column("rd_vt")
    solve = result.column("ard_solve_vt")
    # Between the two largest M values, RD's growth exponent must exceed
    # the ARD solve phase's (M^3 vs M^2 per-RHS cost).
    import math

    ratio_m = ms[-1] / ms[-2]
    rd_exp = math.log(rd[-1] / rd[-2], ratio_m)
    solve_exp = math.log(solve[-1] / solve[-2], ratio_m)
    assert rd_exp > solve_exp + 0.4, (rd_exp, solve_exp)
    # Speedup climbs with M in the compute-dominated (large-M) tail.
    # (Small M can show inflated speedups from pure latency amortization,
    # so the head of the sweep is not comparable.)
    speedups = result.column("speedup")
    assert speedups[-1] > speedups[-2]
