"""Benchmarks of the tracing subsystem's cost, on and off.

One benchmark per question: what do the disabled ``span``/``instant``
guards cost per call (the price every solver phase and runtime send
pays forever — the send path now stamps ``seq`` edge attrs when a
tracer is live, so the disabled guard must stay one thread-local
lookup), what does an *enabled* span cost per record (the price of
``trace=True``), what does end-to-end tracing add to a representative
ARD factor+solve, and what does the post-hoc critical-path analysis of
such a trace cost?  The disabled-path numbers back the <5% quality
gate in ``tests/test_quality_gates.py``; run with
``REPRO_BENCH_SCALE=full`` for the paper-scale problem.
"""

import os

import numpy as np

from repro.core.ard import ARDFactorization
from repro.obs import Tracer, analyze_critical_path, instant, span, tracing
from repro.workloads import helmholtz_block_system, random_rhs

SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")
N, M, P, R = (256, 8, 8, 32) if SCALE == "full" else (64, 4, 4, 8)

SPAN_REPS = 1000


def test_disabled_span_guard(benchmark):
    """Cost of 1000 ``span()`` entries with no tracer installed."""

    def run():
        for _ in range(SPAN_REPS):
            with span("kernel"):
                pass
        return SPAN_REPS

    assert benchmark(run) == SPAN_REPS


def test_disabled_instant_guard(benchmark):
    """Cost of 1000 ``instant()`` calls with no tracer installed.

    This is the exact guard the runtime's send path executes per
    message when tracing is off (the ``seq`` edge attrs are only
    computed behind it)."""

    def run():
        for _ in range(SPAN_REPS):
            instant("send", dest=1, tag=0, nbytes=128, seq=0, arrival=0.0)
        return SPAN_REPS

    assert benchmark(run) == SPAN_REPS


def test_enabled_span_record(benchmark):
    """Cost of 1000 recorded spans on an installed (clockless) tracer."""

    def run():
        tracer = Tracer(rank=0)
        with tracing(tracer):
            for _ in range(SPAN_REPS):
                with span("kernel"):
                    pass
        return tracer

    tracer = benchmark(run)
    assert len(tracer.spans) == SPAN_REPS


def _system():
    matrix, _ = helmholtz_block_system(N, M)
    return matrix, random_rhs(N, M, R, seed=0)


def test_ard_solve_trace_off(benchmark):
    matrix, b = _system()

    def run():
        fact = ARDFactorization(matrix, nranks=P)
        return fact.solve(b)

    x = benchmark(run)
    assert x.shape == b.shape


def test_ard_solve_trace_on(benchmark):
    matrix, b = _system()

    def run():
        fact = ARDFactorization(matrix, nranks=P, trace=True)
        return fact.solve(b)

    x = benchmark(run)
    assert x.shape == b.shape
    assert np.isfinite(x).all()


def test_critpath_analysis(benchmark):
    """Cost of the post-hoc span-DAG + critical-path analysis itself
    (edge reconstruction, backward walk, attribution) on a traced ARD
    factor+solve — pure post-processing, never on the solve path."""
    matrix, b = _system()
    fact = ARDFactorization(matrix, nranks=P, trace=True)
    fact.solve(b)

    report = benchmark(analyze_critical_path, fact)
    assert report.validate() == []
    assert report.nranks == P
