"""Microbenchmarks of the block kernels and substrate primitives.

Not a paper figure: these time the building blocks every experiment
rests on (batched LU, batched GEMM, the affine-scan round, an SPMD
round trip) so kernel-level regressions are visible independently of
the algorithm-level results.
"""

import numpy as np

from repro.comm import run_spmd
from repro.core.scan_affine import affine_scan
from repro.linalg.blockops import BatchedLU, gemm
from repro.prefix import AffinePair

RNG = np.random.default_rng(0)


def _blocks(n, m):
    return RNG.standard_normal((n, m, m)) + m * np.eye(m)


def test_batched_lu_factor(benchmark):
    blocks = _blocks(256, 16)
    result = benchmark(lambda: BatchedLU(blocks))
    assert result.n == 256


def test_batched_lu_solve(benchmark):
    lu = BatchedLU(_blocks(256, 16))
    rhs = RNG.standard_normal((256, 16, 32))
    out = benchmark(lambda: lu.solve(rhs))
    assert out.shape == (256, 16, 32)


def test_batched_gemm(benchmark):
    a = RNG.standard_normal((256, 16, 16))
    b = RNG.standard_normal((256, 16, 32))
    out = benchmark(lambda: gemm(a, b))
    assert out.shape == (256, 16, 32)


def test_affine_scan_p8(benchmark):
    dim = 32
    mats = RNG.standard_normal((8, dim, dim)) / dim

    def program(comm):
        pair = AffinePair(mats[comm.rank], np.zeros((dim, 0)))
        result, _ = affine_scan(comm, pair)
        return result.inclusive.a[0, 0]

    def run():
        return run_spmd(program, 8, copy_messages=False)

    result = benchmark(run)
    assert result.nranks == 8


def test_spmd_allreduce_roundtrip(benchmark):
    def program(comm):
        return comm.allreduce(comm.rank)

    out = benchmark(lambda: run_spmd(program, 8))
    assert out.values[0] == 28
