"""Kernel microbenchmark suite: vectorized vs reference block kernels.

Not a paper figure: these time the building blocks every experiment
rests on, at the kernel level where the vectorization PR claims its
wins, and persist one machine-readable baseline
(``results/BENCH_kernels.json``) per run:

- batched (pure-NumPy, vectorized-over-blocks) LU factor/solve vs the
  retained ``scipy_loop`` reference backend, across an ``(n, m, r)``
  grid spanning both sides of the crossover;
- sequential vs level-wise (batched Blelloch) evaluation of the
  transfer recurrence's vector kernels, across an ``(h, m, r)`` grid;
- :func:`repro.comm.fastcopy.fastcopy` vs ``copy.deepcopy`` on the
  message payloads the runtime actually ships;
- the end-to-end ARD ``solve()`` under the new kernel defaults vs the
  seed configuration, on the service-shaped workload (a stream of
  coalesced thin RHS batches — see ``bench_service.py``).

The asserted floors sit below the numbers measured on the reference
x86 host (quoted inline) so that noisy CI runs pass while real
regressions still fail.  ``pytest benchmarks/bench_kernels.py`` runs
the whole suite; the comparison tests time manually (best-of-k), so
they are unaffected by ``--benchmark-disable``.
"""

import copy
import json
import time

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.comm.fastcopy import fastcopy
from repro.config import config_context
from repro.core.ard import ARDFactorization
from repro.core.distribute import distribute_matrix
from repro.core.recurrence import (
    TransferOperators,
    forward_solution,
    local_vector_aggregate,
)
from repro.core.scan_affine import affine_scan
from repro.linalg.blockops import BatchedLU, gemm
from repro.prefix import AffinePair
from repro.workloads import helmholtz_block_system, random_rhs

RNG = np.random.default_rng(0)

#: Floors asserted below (measured on the reference host: LU 3.6x at
#: the acceptance point, level-wise 1.6-7.7x on thin panels, fastcopy
#: ~9x on an AffinePair, end-to-end stream 2.1-2.5x).
LU_SPEEDUP_FLOOR = 3.0
LEVELWISE_SPEEDUP_FLOOR = 1.3
FASTCOPY_SPEEDUP_FLOOR = 5.0
E2E_SPEEDUP_FLOOR = 1.5

#: (n, m, r) grid for the LU backend comparison; (256, 8, 16) is the
#: acceptance point, the m >= 16 rows sit past the batched crossover
#: and are recorded (not asserted) as the honest loss side.
LU_GRID = [(256, 8, 16), (1024, 4, 8), (64, 8, 16), (256, 16, 32), (128, 32, 32)]
LU_ACCEPTANCE = (256, 8, 16)

#: (h, m, r) grid for the recurrence comparison; thin panels
#: (r <= 16) are asserted, r = 32 sits at the crossover and is
#: recorded only.
REC_GRID = [(64, 8, 1), (128, 8, 8), (256, 8, 16), (128, 8, 32)]

#: Service-shaped end-to-end workload: N blocks of order M on P ranks,
#: RHS_TOTAL single-column requests coalesced into BATCH-wide solves.
E2E_N, E2E_M, E2E_P = 512, 8, 4
E2E_RHS_TOTAL, E2E_BATCH = 256, 16

_NEW_DEFAULTS = dict(blockops_backend="batched", recurrence_mode="auto")
_SEED_CONFIG = dict(blockops_backend="scipy_loop", recurrence_mode="sequential")


def _best(fn, reps=7, inner=1):
    """Best-of-``reps`` wall seconds of ``inner`` calls to ``fn``."""
    out = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        out = min(out, (time.perf_counter() - t0) / inner)
    return out


def _blocks(n, m):
    return RNG.standard_normal((n, m, m)) + m * np.eye(m)


@pytest.fixture(scope="module")
def kernel_results(results_dir):
    """Accumulates each test's measurements; written once at teardown."""
    data = {}
    yield data
    path = results_dir / "BENCH_kernels.json"
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


class TestLUBackends:
    def test_batched_vs_loop_grid(self, kernel_results):
        rows = []
        for n, m, r in LU_GRID:
            blocks = _blocks(n, m)
            rhs = RNG.standard_normal((n, m, r))
            times = {}
            for backend in ("batched", "scipy_loop"):
                t_factor = _best(lambda: BatchedLU(blocks, backend=backend))
                lu = BatchedLU(blocks, backend=backend)
                t_solve = _best(lambda: lu.solve(rhs))
                times[backend] = (t_factor, t_solve)
            speedup = sum(times["scipy_loop"]) / sum(times["batched"])
            rows.append({
                "n": n, "m": m, "r": r,
                "batched_factor_s": times["batched"][0],
                "batched_solve_s": times["batched"][1],
                "loop_factor_s": times["scipy_loop"][0],
                "loop_solve_s": times["scipy_loop"][1],
                "factor_solve_speedup": speedup,
            })
            if (n, m, r) == LU_ACCEPTANCE:
                assert speedup >= LU_SPEEDUP_FLOOR, (
                    f"batched LU factor+solve at (n,m,r)={LU_ACCEPTANCE} is "
                    f"{speedup:.2f}x the scipy loop, below the "
                    f"{LU_SPEEDUP_FLOOR}x floor"
                )
        kernel_results["lu_backends"] = rows


class TestRecurrenceModes:
    def test_sequential_vs_levelwise_grid(self, kernel_results):
        rows = []
        for h, m, r in REC_GRID:
            mat, _ = helmholtz_block_system(h, m)
            ops = TransferOperators(distribute_matrix(mat, 1)[0])
            g = ops.g(RNG.standard_normal((h, m, r)))
            entry = RNG.standard_normal((2 * m, r))
            ops.levels()  # tree build is matrix work, amortized per RHS

            def vector_kernels():
                local_vector_aggregate(ops, g[: ops.ntransfer])
                forward_solution(ops, g, entry, h)

            times = {}
            for mode in ("sequential", "levelwise"):
                with config_context(recurrence_mode=mode):
                    times[mode] = _best(vector_kernels)
            speedup = times["sequential"] / times["levelwise"]
            rows.append({
                "h": h, "m": m, "r": r,
                "sequential_s": times["sequential"],
                "levelwise_s": times["levelwise"],
                "speedup": speedup,
            })
            if r <= 16:
                assert speedup >= LEVELWISE_SPEEDUP_FLOOR, (
                    f"level-wise recurrence at (h,m,r)=({h},{m},{r}) is "
                    f"{speedup:.2f}x sequential, below the "
                    f"{LEVELWISE_SPEEDUP_FLOOR}x floor"
                )
        kernel_results["recurrence_modes"] = rows


class TestFastcopy:
    def test_fastcopy_vs_deepcopy(self, kernel_results):
        pair = AffinePair(
            RNG.standard_normal((16, 16)), RNG.standard_normal((16, 4))
        )
        structured = {
            "pair": pair,
            "rows": (RNG.standard_normal((8, 4, 4)), [np.arange(6.0)]),
        }
        rows = []
        for label, payload in [("affine_pair", pair),
                               ("structured_dict", structured)]:
            t_fast = _best(lambda: fastcopy(payload), reps=20, inner=200)
            t_deep = _best(lambda: copy.deepcopy(payload), reps=20, inner=200)
            rows.append({
                "payload": label,
                "fastcopy_s": t_fast,
                "deepcopy_s": t_deep,
                "speedup": t_deep / t_fast,
            })
        kernel_results["fastcopy"] = rows
        pair_speedup = rows[0]["speedup"]
        assert pair_speedup >= FASTCOPY_SPEEDUP_FLOOR, (
            f"fastcopy on an AffinePair is {pair_speedup:.1f}x deepcopy, "
            f"below the {FASTCOPY_SPEEDUP_FLOOR}x floor"
        )


class TestEndToEnd:
    def test_ard_service_stream_speedup(self, kernel_results):
        """ARD solve under the new kernel defaults vs the seed config on
        the service-shaped workload: ``RHS_TOTAL`` single-column
        requests coalesced into ``BATCH``-wide solves against one held
        factorization (how ``repro.service`` drives the solver).  The
        monolithic full-width solve is recorded alongside — the new
        defaults must hold parity there (the width-aware dispatch
        routes wide panels to the same kernels the seed used)."""
        mat, _ = helmholtz_block_system(E2E_N, E2E_M)
        full = random_rhs(E2E_N, E2E_M, nrhs=E2E_RHS_TOTAL, seed=0)
        batches = [
            full[:, :, i:i + E2E_BATCH]
            for i in range(0, E2E_RHS_TOTAL, E2E_BATCH)
        ]
        configs = [("new", _NEW_DEFAULTS), ("seed", _SEED_CONFIG)]
        facts = {}
        for label, cfg in configs:
            with config_context(**cfg):
                facts[label] = ARDFactorization(mat, nranks=E2E_P)
                facts[label].solve(batches[0])  # warm; builds level tree
        stream = {"new": float("inf"), "seed": float("inf")}
        mono = {"new": float("inf"), "seed": float("inf")}
        for _ in range(3):  # interleaved so host noise hits both configs
            for label, cfg in configs:
                with config_context(**cfg):
                    t0 = time.perf_counter()
                    for b in batches:
                        facts[label].solve(b)
                    stream[label] = min(stream[label], time.perf_counter() - t0)
                    t0 = time.perf_counter()
                    facts[label].solve(full)
                    mono[label] = min(mono[label], time.perf_counter() - t0)
        stream_speedup = stream["seed"] / stream["new"]
        kernel_results["ard_end_to_end"] = {
            "n": E2E_N, "m": E2E_M, "nranks": E2E_P,
            "rhs_total": E2E_RHS_TOTAL, "batch": E2E_BATCH,
            "stream_new_s": stream["new"], "stream_seed_s": stream["seed"],
            "stream_speedup": stream_speedup,
            "mono_new_s": mono["new"], "mono_seed_s": mono["seed"],
            "mono_speedup": mono["seed"] / mono["new"],
        }
        assert stream_speedup >= E2E_SPEEDUP_FLOOR, (
            f"ARD solve on the coalesced-stream workload is "
            f"{stream_speedup:.2f}x the seed configuration, below the "
            f"{E2E_SPEEDUP_FLOOR}x floor"
        )


# -- single-kernel timings (pytest-benchmark; no cross-backend claims) --


def test_batched_lu_factor(benchmark):
    blocks = _blocks(256, 16)
    result = benchmark(lambda: BatchedLU(blocks))
    assert result.n == 256


def test_batched_lu_solve(benchmark):
    lu = BatchedLU(_blocks(256, 16))
    rhs = RNG.standard_normal((256, 16, 32))
    out = benchmark(lambda: lu.solve(rhs))
    assert out.shape == (256, 16, 32)


def test_batched_gemm(benchmark):
    a = RNG.standard_normal((256, 16, 16))
    b = RNG.standard_normal((256, 16, 32))
    out = benchmark(lambda: gemm(a, b))
    assert out.shape == (256, 16, 32)


def test_affine_scan_p8(benchmark):
    dim = 32
    mats = RNG.standard_normal((8, dim, dim)) / dim

    def program(comm):
        pair = AffinePair(mats[comm.rank], np.zeros((dim, 0)))
        result, _ = affine_scan(comm, pair)
        return result.inclusive.a[0, 0]

    def run():
        return run_spmd(program, 8, copy_messages=False)

    result = benchmark(run)
    assert result.nranks == 8


def test_spmd_allreduce_roundtrip(benchmark):
    def program(comm):
        return comm.allreduce(comm.rank)

    out = benchmark(lambda: run_spmd(program, 8))
    assert out.values[0] == 28
