"""Solver-service throughput: batched cached ARD vs per-request RD.

The acceptance claim for the service layer (docs/SERVICE.md): at
R = 256 requests against one matrix, the service — factorization held
in the cache, requests coalesced into multi-RHS ARD solves — must serve
at least 5x the requests/second of the unserved baseline that re-runs
classical recursive doubling from scratch per request.  The hit-rate
and batch-size evidence must be visible in the service's
``repro.obs``-backed metrics snapshot, not inferred.

Sweeps R over 10 / 100 / 256 (plus 1000 at full scale) through
:func:`repro.harness.serve.serve_bench` and persists the table as
``results/serve_bench.stats.json``.
"""

import numpy as np

from conftest import SCALE

from repro.harness.serve import serve_bench

RHS_COUNTS = (10, 100, 256, 1000) if SCALE == "full" else (10, 100, 256)
SPEEDUP_FLOOR = 5.0


def test_service_throughput_vs_rd(benchmark, results_dir):
    result = benchmark.pedantic(
        serve_bench,
        args=(SCALE, RHS_COUNTS),
        kwargs=dict(out_dir=results_dir, verbose=False),
        rounds=1, iterations=1,
    )
    rows = {row["R"]: row for row in result["rows"]}

    # Headline claim: >= 5x requests/sec at R = 256.
    row = rows[256]
    assert row["speedup"] >= SPEEDUP_FLOOR, (
        f"service served {row['service_req_per_s']:.0f} req/s vs RD "
        f"{row['rd_req_per_s']:.0f} req/s — only {row['speedup']:.1f}x, "
        f"need >= {SPEEDUP_FLOOR}x"
    )

    # Amortization shape: throughput advantage grows from R=10 to the
    # batched regime (more requests per cached factorization).
    assert rows[256]["speedup"] > rows[10]["speedup"] * 0.5

    # The metrics snapshot must carry the evidence.
    snap = row["metrics"]
    assert snap["cache"]["misses"] == 1, "factored more than once"
    assert snap["cache"]["hit_rate"] is not None and snap["cache"]["hit_rate"] > 0
    assert snap["counters"]["requests.served_from_cache"] >= 255
    batch = snap["summaries"]["batch.size"]
    assert batch["count"] >= 1 and batch["max"] > 1, "no batching happened"
    assert np.isclose(snap["counters"]["rhs.solved"], 256)


def test_service_scales_with_request_count(benchmark):
    """Per-request service cost falls as R grows (batch amortization)."""
    result = benchmark.pedantic(
        serve_bench, args=(SCALE, (10, 256)), kwargs=dict(verbose=False),
        rounds=1, iterations=1,
    )
    rows = {row["R"]: row for row in result["rows"]}
    # Not a strict monotonicity claim (thread scheduling jitters small
    # runs); the batched regime must simply not collapse.
    assert rows[256]["service_req_per_s"] > rows[10]["service_req_per_s"] * 0.5
