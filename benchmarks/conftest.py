"""Shared helpers for the benchmark suite.

Every benchmark regenerates one reconstructed table/figure through the
experiment harness (``repro.harness``), times it with pytest-benchmark,
persists the rows as CSV under ``results/``, and asserts the claim the
figure supports.  Benchmarks default to the harness's ``smoke`` scale so
``pytest benchmarks/ --benchmark-only`` completes in minutes; set
``REPRO_BENCH_SCALE=full`` to regenerate the paper-scale parameter
ranges (see EXPERIMENTS.md for recorded full-scale outputs).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness import run_experiment

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_and_save(exp_id: str, results_dir: pathlib.Path):
    """Run one experiment at the configured scale and persist its CSV."""
    return run_experiment(exp_id, SCALE, out_dir=results_dir, verbose=False)
