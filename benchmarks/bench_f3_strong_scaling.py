"""recon-F3 — strong scaling: runtime vs simulated rank count."""

from conftest import run_and_save


def test_f3_strong_scaling(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_save, args=("recon-F3", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    ps = result.column("P")
    ard = result.column("ard_total_vt")
    # ARD gets faster with more ranks over the measured range...
    assert ard[-1] < ard[0]
    # ...with decent initial efficiency (>= 50% going 1 -> 2 ranks).
    if len(ps) >= 2 and ps[0] == 1 and ps[1] == 2:
        assert ard[0] / ard[1] > 1.5
    # RD stays well above ARD at every P.
    for rd_vt, ard_vt in zip(result.column("rd_vt"), ard):
        assert rd_vt > ard_vt
